(* Host-process RSS, for the memory columns of the extended
   idle-scaling figure. Reads /proc/self/statm (resident pages); the
   value is a property of the measuring host, not of the simulation.
   The nondet-taint lint rule treats both [rss_bytes] and the procfs
   read as taint sources and rejects any resolved call path from here
   into a byte-identity sink ([Report.csv_of_*], the bench-smoke
   fingerprint), so host memory can only ever surface in JSON report
   fields. *)

(* The statm unit is pages, whose size is a host property too: ask the
   host ([getconf PAGESIZE]) once, and fall back to 4096 when there is
   no getconf to ask. The probe is lazy so simulations that never
   report RSS never fork. *)
let page_size =
  lazy
    (match Unix.open_process_in "getconf PAGESIZE 2>/dev/null" with
    | exception _ -> 4096
    | ic -> (
        let line = try input_line ic with End_of_file | Sys_error _ -> "" in
        match (Unix.close_process_in ic, int_of_string_opt (String.trim line)) with
        | Unix.WEXITED 0, Some n when n > 0 -> n
        | _ -> 4096
        | exception _ -> 4096))

let rss_bytes () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> 0
  | ic ->
      let resident =
        match input_line ic with
        | exception End_of_file -> 0
        | line -> (
            match String.split_on_char ' ' line with
            | _size :: resident :: _ ->
                Option.value (int_of_string_opt resident) ~default:0
            | _ -> 0)
      in
      close_in ic;
      resident * Lazy.force page_size
