(* Host-process RSS, for the memory columns of the extended
   idle-scaling figure. Reads /proc/self/statm (resident pages); the
   value is a property of the measuring host, not of the simulation,
   so it must never feed a CSV fingerprint or any determinism check —
   JSON report fields only. *)

let page_size = 4096

let rss_bytes () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> 0
  | ic ->
      let resident =
        match input_line ic with
        | exception End_of_file -> 0
        | line -> (
            match String.split_on_char ' ' line with
            | _size :: resident :: _ ->
                Option.value (int_of_string_opt resident) ~default:0
            | _ -> 0)
      in
      close_in ic;
      resident * page_size
