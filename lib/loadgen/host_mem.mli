(** Resident-set size of the measuring host process.

    Nondeterministic by nature (GC timing, allocator behavior): report
    it in JSON next to the modeled kernel bytes, never in CSV output
    or anything compared for byte identity. The nondet-taint lint rule
    enforces exactly that — [rss_bytes] is one of its sources. *)

val rss_bytes : unit -> int
(** Current RSS in bytes, from [/proc/self/statm] scaled by the host's
    page size ([getconf PAGESIZE], falling back to 4096). Returns 0 on
    hosts without procfs. *)
