(** Resident-set size of the measuring host process.

    Nondeterministic by nature (GC timing, allocator behavior): report
    it in JSON next to the modeled kernel bytes, never in CSV output
    or anything compared for byte identity. *)

val rss_bytes : unit -> int
(** Current RSS in bytes, from [/proc/self/statm]. Returns 0 on hosts
    without procfs. *)
