open Sio_sim
open Sio_net
open Sio_kernel

type t = {
  engine : Engine.t;
  net : Network.t;
  listener : Socket.t;
  w : Workload.t;
  rng : Rng.t;
  partial_request : string;
  mutable established : int;
  mutable reopens : int;
  mutable stopped : bool;
  mutable conns : Tcp.t list;
}

(* A request prefix with no terminating CRLFCRLF: the server must hold
   the connection open waiting for the rest. *)
let make_partial w =
  let full = Sio_httpd.Http.build_request ~path:w.Workload.document_path in
  String.sub full 0 (String.length full / 2)

let rec open_one t ~first =
  if not t.stopped then begin
    let extra_latency = Latency_profile.draw t.w.Workload.inactive_latency t.rng in
    let handlers =
      {
        Tcp.on_established =
          (fun c ->
            if not t.stopped then begin
              t.established <- t.established + 1;
              if not first then t.reopens <- t.reopens + 1;
              Tcp.client_send c ~bytes_len:(String.length t.partial_request)
                ~payload:t.partial_request
            end);
        on_refused = (fun _ -> reopen t);
        on_bytes = (fun _ _ -> ());
        on_server_fin =
          (fun c ->
            t.established <- t.established - 1;
            Tcp.client_close c;
            reopen t);
        on_reset =
          (fun _ ->
            t.established <- t.established - 1;
            reopen t);
      }
    in
    let conn = Tcp.connect ~net:t.net ~listener:t.listener ~extra_latency ~handlers () in
    t.conns <- conn :: t.conns
  end

and reopen t =
  if not t.stopped then
    ignore
      (Engine.after t.engine t.w.Workload.inactive_reopen_delay (fun () ->
           open_one t ~first:false))

let start ~engine ~net ~listener ~workload ~rng () =
  let t =
    {
      engine;
      net;
      listener;
      w = workload;
      rng;
      partial_request = make_partial workload;
      established = 0;
      reopens = 0;
      stopped = false;
      conns = [];
    }
  in
  let n = workload.Workload.inactive_connections in
  let window = workload.Workload.inactive_open_window in
  for i = 0 to n - 1 do
    let jitter = if n <= 1 then Time.zero else Time.ns (i * (window / n)) in
    ignore (Engine.after engine jitter (fun () -> open_one t ~first:true))
  done;
  t

let target t = t.w.Workload.inactive_connections
let established t = t.established
let reopens t = t.reopens

let stop t =
  t.stopped <- true;
  List.iter (fun c -> if Tcp.is_client_open c then Tcp.client_close c) t.conns;
  t.conns <- []
