open Sio_sim
open Sio_net
open Sio_kernel

type conn_state = {
  started : Time.t;
  mutable received : int;
  mutable finished : bool;
  mutable timer : Event_queue.handle option;
}

type t = {
  engine : Engine.t;
  net : Network.t;
  listener : Socket.t;
  w : Workload.t;
  on_done : unit -> unit;
  request_text : string;
  expected_bytes : int;
  errors : Metrics.errors;
  latency : Histogram.t;
  sampler : Sampler.t;
  start_time : Time.t;
  rng : Rng.t;
  total : int; (* connections this client will offer *)
  mutable attempted : int;
  mutable completed : int;
  mutable terminal : int;
  mutable fds : int;
  ports : Port_pool.t;
}

let now t = Engine.now t.engine

(* Every connection ends exactly once; afterwards the descriptor is
   returned immediately and the port only after TIME_WAIT — except for
   RST-terminated connections, which skip the quarantine. *)
let finish ?(rst = false) t st =
  if not st.finished then begin
    st.finished <- true;
    (match st.timer with
    | Some h ->
        Engine.cancel t.engine h;
        st.timer <- None
    | None -> ());
    t.fds <- t.fds - 1;
    if rst then Port_pool.release_immediately t.ports else Port_pool.release t.ports;
    t.terminal <- t.terminal + 1;
    if t.terminal = t.total then t.on_done ()
  end

let launch t =
  t.attempted <- t.attempted + 1;
  if t.fds >= t.w.Workload.client_fd_limit then begin
    t.errors.Metrics.fd_limited <- t.errors.Metrics.fd_limited + 1;
    t.terminal <- t.terminal + 1;
    if t.terminal = t.total then t.on_done ()
  end
  else if not (Port_pool.acquire t.ports) then begin
    t.errors.Metrics.port_limited <- t.errors.Metrics.port_limited + 1;
    t.terminal <- t.terminal + 1;
    if t.terminal = t.total then t.on_done ()
  end
  else begin
    t.fds <- t.fds + 1;
    let st = { started = now t; received = 0; finished = false; timer = None } in
    let extra_latency = Sio_net.Latency_profile.draw t.w.Workload.active_latency t.rng in
    let conn_ref = ref None in
    let abort_and_finish () =
      (match !conn_ref with Some c -> Tcp.client_abort c | None -> ());
      finish ~rst:true t st
    in
    let handlers =
      {
        Tcp.on_established =
          (fun c ->
            if not st.finished then
              Tcp.client_send c ~bytes_len:(String.length t.request_text)
                ~payload:t.request_text);
        on_refused =
          (fun _ ->
            if not st.finished then begin
              t.errors.Metrics.refused <- t.errors.Metrics.refused + 1;
              finish ~rst:true t st
            end);
        on_bytes =
          (fun c n ->
            if not st.finished then begin
              st.received <- st.received + n;
              if st.received >= t.expected_bytes then begin
                t.completed <- t.completed + 1;
                Sampler.record t.sampler ~now:(now t);
                Histogram.add t.latency (Time.sub (now t) st.started);
                Tcp.client_close c;
                finish t st
              end
            end);
        on_server_fin =
          (fun c ->
            if not st.finished then begin
              (* FIN before the full response: the server dropped us. *)
              t.errors.Metrics.truncated <- t.errors.Metrics.truncated + 1;
              Tcp.client_close c;
              finish t st
            end);
        on_reset =
          (fun _ ->
            if not st.finished then begin
              t.errors.Metrics.resets <- t.errors.Metrics.resets + 1;
              finish ~rst:true t st
            end);
      }
    in
    let conn = Tcp.connect ~net:t.net ~listener:t.listener ~extra_latency ~handlers () in
    conn_ref := Some conn;
    st.timer <-
      Some
        (Engine.after t.engine t.w.Workload.client_timeout (fun () ->
             st.timer <- None;
             if not st.finished then begin
               t.errors.Metrics.timeouts <- t.errors.Metrics.timeouts + 1;
               abort_and_finish ()
             end))
  end

let start ~engine ~net ~listener ~workload ?arrivals ?rng ?(on_done = fun () -> ())
    () =
  if workload.Workload.request_rate <= 0 then
    invalid_arg "Httperf.start: request rate must be positive";
  let total =
    match arrivals with
    | Some ts -> List.length ts
    | None -> workload.Workload.total_connections
  in
  let t =
    {
      engine;
      net;
      listener;
      w = workload;
      on_done;
      request_text = Sio_httpd.Http.build_request ~path:workload.Workload.document_path;
      expected_bytes =
        Sio_httpd.Http.response_bytes ~body_bytes:workload.Workload.doc_bytes;
      errors =
        {
          Metrics.timeouts = 0;
          refused = 0;
          resets = 0;
          fd_limited = 0;
          port_limited = 0;
          truncated = 0;
        };
      latency = Histogram.create ();
      sampler = Sampler.create ~interval:(Time.s 1);
      start_time = Engine.now engine;
      rng = (match rng with Some r -> r | None -> Rng.create ~seed:0);
      total;
      attempted = 0;
      completed = 0;
      terminal = 0;
      fds = 0;
      ports =
        Port_pool.create ~engine ~ports:workload.Workload.ephemeral_ports
          ~time_wait:workload.Workload.time_wait;
    }
  in
  (match arrivals with
  | Some ts ->
      (* Cluster mode: the steering pre-pass supplies this shard's
         slice of the global schedule as offsets from now. Pin the
         sampler's origin to the common client start so every shard
         measures on the same absolute grid and per-interval rates
         sum exactly across shards. *)
      Sampler.record_n t.sampler ~now:t.start_time 0;
      List.iter
        (fun off ->
          ignore
            (Engine.at engine (Time.add t.start_time off) (fun () -> launch t)))
        ts
  | None ->
      (* Deterministic spacing: connection i departs at i / rate. *)
      let interval_ns = 1_000_000_000 / workload.Workload.request_rate in
      for i = 0 to workload.Workload.total_connections - 1 do
        ignore
          (Engine.at engine
             (Time.add t.start_time (Time.ns (i * interval_ns)))
             (fun () -> launch t))
      done);
  t

let attempted t = t.attempted
let completed t = t.completed
let errors t = t.errors
let in_flight t = t.attempted - t.terminal
let is_done t = t.terminal >= t.total
let reply_rates t ~until = Sampler.rates t.sampler ~until
let fds_in_use t = t.fds
let ports_in_use t = Port_pool.in_use t.ports

let metrics t ~t_end =
  let rates = Sampler.rates t.sampler ~until:t_end in
  let stats = Stats.create () in
  List.iter (Stats.add stats) rates;
  (* Short runs (under one sampling interval) have no complete
     interval: fall back to the run-wide average so tiny test
     workloads still report a meaningful rate. *)
  if Stats.count stats = 0 && t.completed > 0 then begin
    let duration_s = Time.to_sec_f (Time.sub t_end t.start_time) in
    if duration_s > 0. then Stats.add stats (float_of_int t.completed /. duration_s)
  end;
  let have = Stats.count stats > 0 in
  {
    Metrics.target_rate = t.w.Workload.request_rate;
    attempted = t.attempted;
    completed = t.completed;
    errors = t.errors;
    reply_rate_avg = (if have then Stats.mean stats else 0.);
    reply_rate_sd = (if have then Stats.stddev stats else 0.);
    reply_rate_min = (if have then Stats.min stats else 0.);
    reply_rate_max = (if have then Stats.max stats else 0.);
    error_percent =
      (if t.attempted = 0 then 0.
       else 100. *. float_of_int (Metrics.total_errors t.errors) /. float_of_int t.attempted);
    latency = t.latency;
    duration = Time.sub t_end t.start_time;
  }
