(** One fully wired benchmark run: server host + network + inactive
    pool + httperf, executed to completion, yielding the measurements
    the paper's figures plot. *)

open Sio_sim
open Sio_kernel
open Sio_httpd

type server_kind =
  | Thttpd_select  (** thttpd on select(2): the pre-poll baseline *)
  | Thttpd_poll  (** stock thttpd on classic poll() *)
  | Thttpd_devpoll of { use_mmap : bool; max_events : int }
      (** thttpd modified for /dev/poll *)
  | Thttpd_epoll of { max_events : int }
      (** thttpd on the epoll-style ready list: the mechanism this
          line of work became *)
  | Phhttpd  (** RT-signal server *)
  | Hybrid  (** the paper's future-work design *)

val pp_server_kind : Format.formatter -> server_kind -> unit

type config = {
  kind : server_kind;
  workload : Workload.t;
  costs : Cost_model.t;
  seed : int;
  thttpd : Thttpd.config;
  phhttpd : Phhttpd.config;
  hybrid : Hybrid.config;
  server_fd_limit : int;
  settle : Time.t;  (** let the inactive pool establish before measuring *)
  drain : Time.t;  (** grace period after generation ends *)
  hints : bool;  (** device-driver hinting available (ablation knob) *)
  wake_policy : Wait_queue.wake_policy;
  transmit : Conn.transmit;
      (** send path for responses: plain write() copies (the default),
          sendfile (paper §6 future work), the shared transmit ring,
          or selective header-copy + body-map *)
  kernel_mem_limit : int option;
      (** cap on modeled kernel memory for sockets ([Host.create]'s
          [mem_limit]); [None] (the default) models an unbounded
          machine and leaves accept behavior exactly as before *)
  net_bandwidth_bits_per_sec : int option;
      (** link speed between clients and server; [None] takes the
          network default (100 Mbit/s, the paper's testbed). The
          response-size figure raises it to 1 Gbit/s so large bodies
          are CPU-bound, not wire-bound. *)
}

val default_config : kind:server_kind -> workload:Workload.t -> config
(** Server document size and sampling follow the workload; everything
    else takes the library defaults. *)

type outcome = {
  metrics : Metrics.t;
  server_stats : Server_stats.t;
  host_counters : Host.counters;
  cpu_utilization : float;
  inactive_established : int;
  inactive_reopens : int;
  final_mode : string;  (** phhttpd/hybrid: mode at end of run *)
  kernel_mem_peak : int;
      (** peak modeled kernel memory reserved for sockets over the
          run, in bytes; deterministic in the seed *)
  host_rss_bytes : int;
      (** measuring host's RSS right after the run: methodology
          context for the memory figure, nondeterministic — report in
          JSON only, never in fingerprinted output *)
}

val run : config -> outcome

val run_routed :
  arrivals:Sio_sim.Time.t list ->
  measure:Sio_sim.Time.t ->
  ?mem_pool:Sio_kernel.Host.mem_pool ->
  config ->
  outcome * float list
(** One shard of a cluster run ([Cluster] drives this): the same
    wiring as {!run}, but the client launches exactly the supplied
    arrival offsets (this shard's slice of the global schedule; see
    {!Httperf.start}), the measurement window is the cluster-wide
    generation duration [measure] rather than the per-shard
    workload's, and the host optionally reserves kernel memory
    against a shared {!Sio_kernel.Host.mem_pool}. Also returns the
    per-interval reply-rate series on the cluster's common grid, for
    exact cross-shard aggregation. *)
