(** Text rendering of sweep results: the same rows the paper's figures
    plot, plus simple ASCII curves for eyeballing shapes in a
    terminal. *)

type series = { label : string; points : Sweep.point list }

val pp_table : Format.formatter -> series -> unit
(** Rate / avg / sd / min / max / err% / median rows, one per point. *)

val pp_reply_rate_chart : Format.formatter -> ?height:int -> series list -> unit
(** ASCII chart of average reply rate vs target rate for several
    series overlaid (each series gets a distinct glyph). *)

val pp_error_comparison : Format.formatter -> series list -> unit
(** Error-percent columns side by side (Figure 10's quantity). *)

val pp_latency_comparison : Format.formatter -> series list -> unit
(** Median-latency columns side by side (Figure 14's quantity). *)

val pp_counters : Format.formatter -> Sweep.point -> unit
(** Kernel/server counter dump for one point (hints, driver polls,
    overflows, ...). *)

val csv_of_series : ?x_header:string -> series -> string
(** The series as CSV (header + one row per rate), for external
    plotting tools. [x_header] renames the first column (default
    ["rate"]) for series whose x axis is not a request rate, e.g. the
    idle-connection counts of the idle-scaling figure. *)

val csv_of_response_size_series : series -> string
(** [csv_of_series ~x_header:"body_bytes"] plus a trailing [mbit_s]
    column: achieved wire throughput, [reply_rate_avg] times the full
    response size (headers + body) in megabits per second. The x value
    of each point is the response body size in bytes. *)

val csv_of_shard_series : series -> string
(** Shard-scaling rows: x column ["shards"], the reply-rate block, and
    p50/p99 connection-time columns (latency tails are where accept
    steering shows) in place of the single median. The x value of each
    point is the cluster's shard count; all other columns describe the
    merged cluster-wide outcome. *)

val csv_of_idle_series : series -> string
(** [csv_of_series ~x_header:"idle"] plus a trailing [kernel_bytes]
    column: the peak modeled kernel memory reserved for sockets during
    the point's run. Deterministic in the seed, so safe to include in
    byte-identity fingerprints (unlike host RSS, which stays out of
    CSV entirely). *)
