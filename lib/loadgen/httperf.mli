(** The rate-driven benchmark client (httperf, as modified for the
    paper: dynamic descriptor handling, high-latency client support).

    Offers [total_connections] connections at the target rate with
    deterministic spacing, one GET per connection, and classifies
    every outcome. Client-side resource limits are enforced: a
    descriptor budget and an ephemeral-port pool with TIME_WAIT
    quarantine — the limits that shaped the paper's 35 000-connection
    benchmark procedure. *)

open Sio_sim
open Sio_net
open Sio_kernel

type t

val start :
  engine:Engine.t ->
  net:Network.t ->
  listener:Socket.t ->
  workload:Workload.t ->
  ?arrivals:Time.t list ->
  ?rng:Rng.t ->
  ?on_done:(unit -> unit) ->
  unit ->
  t
(** Begins offering connections immediately. [on_done] fires when
    every offered connection has reached a terminal state. [rng] is
    required only when the workload's [active_latency] profile is
    randomized (defaults to a fresh seed-0 stream).

    [arrivals] (cluster mode) replaces the uniform spacing with an
    explicit launch schedule — offsets from now, as produced by the
    shard steering pre-pass — and the client offers exactly that many
    connections instead of the workload's [total_connections]. The
    reply sampler's origin is then pinned to the common start time so
    per-interval rates align across shards. *)

val attempted : t -> int
val completed : t -> int
val errors : t -> Metrics.errors
val in_flight : t -> int
val is_done : t -> bool

val fds_in_use : t -> int
val ports_in_use : t -> int

val metrics : t -> t_end:Time.t -> Metrics.t
(** Summarises the run. [t_end] bounds the reply-rate sampling window
    (normally the end of connection generation). *)

val reply_rates : t -> until:Time.t -> float list
(** Per-interval reply rates, as fed into {!metrics}. In cluster mode
    every shard's list lives on the same absolute grid (see
    [arrivals]), so a cluster's aggregate rate series is the
    element-wise sum of its shards'. *)
