(** Request-rate sweeps: one figure = one sweep. *)

type point = { rate : int; outcome : Experiment.outcome }

val paper_rates : int list
(** 500, 550, ..., 1100 — the x axis of Figures 4-14. *)

val rates : from:int -> until:int -> step:int -> int list

val run :
  ?pool:Sio_sim.Domain_pool.t ->
  ?on_point:(point -> unit) ->
  ?min_duration_s:int ->
  base:Experiment.config ->
  rates:int list ->
  unit ->
  point list
(** Runs the base experiment once per rate. Each point is a fully
    independent simulation: a fresh engine seeded by
    [Rng.derive ~seed:base.seed rate], so per-point seeds are
    unrelated and provably distinct for distinct rates (duplicate
    rates raise [Invalid_argument]; the uniqueness of the derived
    seeds is asserted up front).

    With [pool], points run in parallel on the pool's domains; the
    result list — and every number in it — is bit-for-bit identical
    to the sequential run, because ordering is restored by index
    before [on_point] fires (in rate order, after all points
    complete). Without [pool], [on_point] fires as each point
    completes, for progress output.

    [min_duration_s] (default 3) raises the per-point connection count
    when necessary so every point generates load for at least that
    many seconds — down-scaled workloads stay measurable at high
    rates. *)
