open Sio_sim

type point = { rate : int; outcome : Experiment.outcome }

let rates ~from ~until ~step =
  if step <= 0 then invalid_arg "Sweep.rates: step must be positive";
  let rec go r acc = if r > until then List.rev acc else go (r + step) (r :: acc) in
  go from []

let paper_rates = rates ~from:500 ~until:1100 ~step:50

let point_config ~base ~min_duration_s rate =
  let total =
    Stdlib.max base.Experiment.workload.Workload.total_connections (min_duration_s * rate)
  in
  let workload =
    {
      base.Experiment.workload with
      Workload.request_rate = rate;
      total_connections = total;
    }
  in
  {
    base with
    Experiment.workload;
    seed = Rng.derive ~seed:base.Experiment.seed rate;
  }

let check_seeds_unique ~base ~rates =
  let seen = Hashtbl.create (List.length rates) in
  List.iter
    (fun rate ->
      let seed = Rng.derive ~seed:base.Experiment.seed rate in
      match Hashtbl.find_opt seen seed with
      | Some other ->
          invalid_arg
            (Printf.sprintf
               "Sweep.run: rates %d and %d derive the same seed %d (duplicate rate?)"
               other rate seed)
      | None -> Hashtbl.replace seen seed rate)
    rates

let run ?pool ?(on_point = fun _ -> ()) ?(min_duration_s = 3) ~base ~rates () =
  check_seeds_unique ~base ~rates;
  let run_rate rate =
    { rate; outcome = Experiment.run (point_config ~base ~min_duration_s rate) }
  in
  match pool with
  | None ->
      List.map
        (fun rate ->
          let point = run_rate rate in
          on_point point;
          point)
        rates
  | Some pool ->
      (* Every point owns its engine and seed, so the parallel path is
         bit-for-bit the sequential one; map restores input order, and
         on_point fires in rate order only after all points landed. *)
      let points = Domain_pool.map pool ~f:run_rate rates in
      List.iter on_point points;
      points
