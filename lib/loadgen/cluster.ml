(* N-shard cluster experiments: the SO_REUSEPORT model of
   [Sio_httpd.Shard_cluster] composed with the [Experiment] harness.

   A cluster run is N independent single-shard simulations — each
   shard owns its own engine, host (CPU, arena, counters, memory
   budget), network, server and client slice — stitched together by
   two deterministic pure passes:

   - steering (before): the global arrival schedule is split into
     per-shard arrival lists by [Shard_cluster.route], and the idle
     population and memory budget are partitioned;
   - merge (after): per-shard outcomes are folded into one
     [Experiment.outcome] by counter sums, absolute-grid rate-series
     addition, and histogram merge — all order-insensitive.

   Because every shard is engine-local and the merge is
   order-insensitive, running the shards on a [Domain_pool] (one
   domain per shard) produces byte-identical results to the
   sequential run: the PR 1 determinism discipline applied to the
   server side. *)

open Sio_sim
open Sio_kernel
open Sio_httpd

type mem_mode =
  | Partitioned  (** each shard gets [kernel_mem_limit / shards] *)
  | Shared
      (** one atomic [Host.mem_pool] of [kernel_mem_limit] bytes
          shared by all shards (admission race near the limit is
          nondeterministic under parallel simulation; use
          [Partitioned] where byte-identity matters) *)

type config = {
  base : Experiment.config;
      (** the cluster-wide experiment: [workload.request_rate] and
          [total_connections] describe the aggregate offered load,
          [inactive_connections] the aggregate idle population *)
  shards : int;
  policy : Shard_cluster.policy;
  population : Shard_cluster.population;
  mem_mode : mem_mode;
}

let default_config ~base ~shards =
  {
    base;
    shards;
    policy = Shard_cluster.Hash_tuple;
    population = Shard_cluster.uniform_population;
    mem_mode = Partitioned;
  }

type outcome = {
  merged : Experiment.outcome;
  per_shard : Experiment.outcome array;
  shard_conns : int array;  (** connections steered to each shard *)
}

(* Field-wise sum of host counters; exhaustive destructure so a new
   counter cannot be dropped from cluster totals (same guard as
   [Server_stats.add]). *)
let add_counters ~into (src : Host.counters) =
  let {
    Host.syscalls;
    driver_polls;
    hint_skips;
    wait_queue_wakes;
    rt_enqueued;
    rt_dropped;
    rt_overflows;
    softirqs;
    accepts;
    connections_refused;
  } =
    src
  in
  into.Host.syscalls <- into.Host.syscalls + syscalls;
  into.Host.driver_polls <- into.Host.driver_polls + driver_polls;
  into.Host.hint_skips <- into.Host.hint_skips + hint_skips;
  into.Host.wait_queue_wakes <- into.Host.wait_queue_wakes + wait_queue_wakes;
  into.Host.rt_enqueued <- into.Host.rt_enqueued + rt_enqueued;
  into.Host.rt_dropped <- into.Host.rt_dropped + rt_dropped;
  into.Host.rt_overflows <- into.Host.rt_overflows + rt_overflows;
  into.Host.softirqs <- into.Host.softirqs + softirqs;
  into.Host.accepts <- into.Host.accepts + accepts;
  into.Host.connections_refused <-
    into.Host.connections_refused + connections_refused

let add_errors ~into (src : Metrics.errors) =
  let { Metrics.timeouts; refused; resets; fd_limited; port_limited; truncated } =
    src
  in
  into.Metrics.timeouts <- into.Metrics.timeouts + timeouts;
  into.Metrics.refused <- into.Metrics.refused + refused;
  into.Metrics.resets <- into.Metrics.resets + resets;
  into.Metrics.fd_limited <- into.Metrics.fd_limited + fd_limited;
  into.Metrics.port_limited <- into.Metrics.port_limited + port_limited;
  into.Metrics.truncated <- into.Metrics.truncated + truncated

(* Element-wise sum of per-shard rate series. Every shard's sampler
   is pinned to the common client start (see Httperf), so index i is
   the same absolute interval in every list; a short list just means
   that shard recorded nothing past its end — zeros. *)
let sum_rate_series series =
  let len = List.fold_left (fun n l -> Stdlib.max n (List.length l)) 0 series in
  let acc = Array.make len 0. in
  List.iter
    (List.iteri (fun i r -> acc.(i) <- acc.(i) +. r))
    series;
  Array.to_list acc

let merge_metrics ~target_rate ~duration per_shard rate_series =
  let errors =
    {
      Metrics.timeouts = 0;
      refused = 0;
      resets = 0;
      fd_limited = 0;
      port_limited = 0;
      truncated = 0;
    }
  in
  let latency = Histogram.create () in
  let attempted = ref 0 and completed = ref 0 in
  Array.iter
    (fun (o : Experiment.outcome) ->
      attempted := !attempted + o.Experiment.metrics.Metrics.attempted;
      completed := !completed + o.Experiment.metrics.Metrics.completed;
      add_errors ~into:errors o.Experiment.metrics.Metrics.errors;
      Histogram.merge_into ~dst:latency o.Experiment.metrics.Metrics.latency)
    per_shard;
  let stats = Stats.create () in
  List.iter (Stats.add stats) (sum_rate_series rate_series);
  (* Same short-run fallback as [Httperf.metrics]: no complete
     sampling interval, but completions happened. *)
  if Stats.count stats = 0 && !completed > 0 then begin
    let duration_s = Time.to_sec_f duration in
    if duration_s > 0. then
      Stats.add stats (float_of_int !completed /. duration_s)
  end;
  let have = Stats.count stats > 0 in
  {
    Metrics.target_rate;
    attempted = !attempted;
    completed = !completed;
    errors;
    reply_rate_avg = (if have then Stats.mean stats else 0.);
    reply_rate_sd = (if have then Stats.stddev stats else 0.);
    reply_rate_min = (if have then Stats.min stats else 0.);
    reply_rate_max = (if have then Stats.max stats else 0.);
    error_percent =
      (if !attempted = 0 then 0.
       else
         100.
         *. float_of_int (Metrics.total_errors errors)
         /. float_of_int !attempted);
    latency;
    duration;
  }

let run ?pool cfg =
  if cfg.shards <= 0 then invalid_arg "Cluster.run: shards must be positive";
  let w = cfg.base.Experiment.workload in
  let n = cfg.shards in
  let total = w.Workload.total_connections in
  (* The global schedule the steering pre-pass splits: connection i
     departs i / rate after the common client start. *)
  let interval_ns = 1_000_000_000 / w.Workload.request_rate in
  let arrivals = Array.init total (fun i -> Time.ns (i * interval_ns)) in
  let assignment =
    Shard_cluster.route ~policy:cfg.policy ~shards:n ~population:cfg.population
      ~seed:cfg.base.Experiment.seed arrivals
  in
  let shard_conns = Shard_cluster.shard_counts ~shards:n assignment in
  let shard_arrivals = Array.make n [] in
  for i = total - 1 downto 0 do
    let s = assignment.(i) in
    shard_arrivals.(s) <- arrivals.(i) :: shard_arrivals.(s)
  done;
  let idle = Shard_cluster.split_evenly ~shards:n w.Workload.inactive_connections in
  let mem_partition =
    match (cfg.mem_mode, cfg.base.Experiment.kernel_mem_limit) with
    | Partitioned, Some limit ->
        Array.map (fun b -> Some b) (Shard_cluster.split_evenly ~shards:n limit)
    | (Shared | Partitioned), _ -> Array.make n None
  in
  let mem_pool =
    match (cfg.mem_mode, cfg.base.Experiment.kernel_mem_limit) with
    | Shared, Some limit -> Some (Host.shared_mem_pool ~limit)
    | (Shared | Partitioned), _ -> None
  in
  let measure = Workload.generation_duration w in
  let shard_cfg s =
    let workload =
      {
        w with
        Workload.total_connections = shard_conns.(s);
        inactive_connections = idle.(s);
      }
    in
    {
      cfg.base with
      Experiment.workload;
      seed = Rng.derive ~seed:cfg.base.Experiment.seed (0x5ad + s);
      kernel_mem_limit = mem_partition.(s);
    }
  in
  let run_shard s =
    Experiment.run_routed ~arrivals:shard_arrivals.(s) ~measure ?mem_pool
      (shard_cfg s)
  in
  let shard_ids = List.init n (fun s -> s) in
  let results =
    match pool with
    | Some p -> Domain_pool.map p ~f:run_shard shard_ids
    | None -> List.map run_shard shard_ids
  in
  let per_shard = Array.of_list (List.map fst results) in
  let rate_series = List.map snd results in
  let metrics =
    merge_metrics ~target_rate:w.Workload.request_rate ~duration:measure
      per_shard rate_series
  in
  let counters = Host.fresh_counters () in
  Array.iter
    (fun (o : Experiment.outcome) ->
      add_counters ~into:counters o.Experiment.host_counters)
    per_shard;
  let server_stats =
    Shard_cluster.merge_stats
      (Array.to_list
         (Array.map (fun (o : Experiment.outcome) -> o.Experiment.server_stats) per_shard))
  in
  let sum f = Array.fold_left (fun acc o -> acc + f o) 0 per_shard in
  let kernel_mem_peak =
    match mem_pool with
    | Some p -> Host.pool_peak p
    | None -> sum (fun (o : Experiment.outcome) -> o.Experiment.kernel_mem_peak)
  in
  let cpu =
    Array.fold_left
      (fun acc (o : Experiment.outcome) -> acc +. o.Experiment.cpu_utilization)
      0. per_shard
    /. float_of_int n
  in
  let merged =
    {
      Experiment.metrics;
      server_stats;
      host_counters = counters;
      cpu_utilization = cpu;
      inactive_established =
        sum (fun (o : Experiment.outcome) -> o.Experiment.inactive_established);
      inactive_reopens =
        sum (fun (o : Experiment.outcome) -> o.Experiment.inactive_reopens);
      final_mode = (if n = 0 then "" else per_shard.(0).Experiment.final_mode);
      kernel_mem_peak;
      host_rss_bytes =
        Array.fold_left
          (fun acc (o : Experiment.outcome) ->
            Stdlib.max acc o.Experiment.host_rss_bytes)
          0 per_shard;
    }
  in
  { merged; per_shard; shard_conns }
