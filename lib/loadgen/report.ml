open Sio_kernel

type series = { label : string; points : Sweep.point list }

let pp_table ppf s =
  Fmt.pf ppf "%s@." s.label;
  Fmt.pf ppf "%a@." Metrics.pp_row_header ();
  List.iter
    (fun p -> Fmt.pf ppf "%a@." Metrics.pp_row p.Sweep.outcome.Experiment.metrics)
    s.points

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let pp_reply_rate_chart ppf ?(height = 16) series_list =
  match series_list with
  | [] -> ()
  | _ ->
      let all_points =
        List.concat_map
          (fun s ->
            List.map
              (fun p -> (p.Sweep.rate, p.Sweep.outcome.Experiment.metrics.Metrics.reply_rate_avg))
              s.points)
          series_list
      in
      let max_y =
        List.fold_left (fun acc (r, v) -> Float.max acc (Float.max (float_of_int r) v)) 1. all_points
      in
      let columns =
        match series_list with
        | s :: _ -> List.map (fun p -> p.Sweep.rate) s.points
        | [] -> []
      in
      let ncols = List.length columns in
      let grid = Array.make_matrix height ncols ' ' in
      List.iteri
        (fun si s ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          List.iteri
            (fun ci p ->
              if ci < ncols then begin
                let v = p.Sweep.outcome.Experiment.metrics.Metrics.reply_rate_avg in
                let row =
                  height - 1 - int_of_float (v /. max_y *. float_of_int (height - 1))
                in
                let row = Stdlib.max 0 (Stdlib.min (height - 1) row) in
                grid.(row).(ci) <- glyph
              end)
            s.points)
        series_list;
      Fmt.pf ppf "reply rate (max %.0f/s)@." max_y;
      Array.iteri
        (fun i row ->
          let label =
            if i = 0 then Printf.sprintf "%6.0f |" max_y
            else if i = height - 1 then Printf.sprintf "%6.0f |" 0.
            else "       |"
          in
          Fmt.pf ppf "%s" label;
          Array.iter (fun c -> Fmt.pf ppf "  %c " c) row;
          Fmt.pf ppf "@.")
        grid;
      Fmt.pf ppf "        ";
      List.iter (fun r -> Fmt.pf ppf "%4d" r) columns;
      Fmt.pf ppf "  <- target rate@.";
      List.iteri
        (fun si s ->
          Fmt.pf ppf "  %c = %s@." glyphs.(si mod Array.length glyphs) s.label)
        series_list

let pp_column_comparison ppf ~quantity ~extract series_list =
  match series_list with
  | [] -> ()
  | first :: _ ->
      Fmt.pf ppf "%6s" "rate";
      List.iter (fun s -> Fmt.pf ppf "  %18s" s.label) series_list;
      Fmt.pf ppf "    (%s)@." quantity;
      List.iteri
        (fun i p ->
          Fmt.pf ppf "%6d" p.Sweep.rate;
          List.iter
            (fun s ->
              match List.nth_opt s.points i with
              | Some q -> Fmt.pf ppf "  %18.2f" (extract q)
              | None -> Fmt.pf ppf "  %18s" "-")
            series_list;
          Fmt.pf ppf "@.")
        first.points

let pp_error_comparison ppf series_list =
  pp_column_comparison ppf ~quantity:"errors in percent"
    ~extract:(fun p -> p.Sweep.outcome.Experiment.metrics.Metrics.error_percent)
    series_list

let pp_latency_comparison ppf series_list =
  pp_column_comparison ppf ~quantity:"median connection time, ms"
    ~extract:(fun p -> Metrics.median_latency_ms p.Sweep.outcome.Experiment.metrics)
    series_list

let pp_counters ppf p =
  let o = p.Sweep.outcome in
  let c = o.Experiment.host_counters in
  Fmt.pf ppf
    "rate=%d cpu=%.1f%% syscalls=%d driver_polls=%d hint_skips=%d wakes=%d rt_enq=%d rt_drop=%d overflows=%d refused=%d mode=%s@."
    p.Sweep.rate
    (100. *. o.Experiment.cpu_utilization)
    c.Host.syscalls c.Host.driver_polls c.Host.hint_skips c.Host.wait_queue_wakes
    c.Host.rt_enqueued c.Host.rt_dropped c.Host.rt_overflows
    c.Host.connections_refused o.Experiment.final_mode

let csv_of_series ?(x_header = "rate") s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (x_header ^ ",avg,sd,min,max,err_percent,median_ms,attempted,completed\n");
  List.iter
    (fun p ->
      let m = p.Sweep.outcome.Experiment.metrics in
      Buffer.add_string buf
        (Printf.sprintf "%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.3f,%d,%d\n" p.Sweep.rate
           m.Metrics.reply_rate_avg m.Metrics.reply_rate_sd m.Metrics.reply_rate_min
           m.Metrics.reply_rate_max m.Metrics.error_percent
           (Metrics.median_latency_ms m) m.Metrics.attempted m.Metrics.completed))
    s.points;
  Buffer.contents buf

let csv_of_response_size_series s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "body_bytes,avg,sd,min,max,err_percent,median_ms,attempted,completed,mbit_s\n";
  List.iter
    (fun p ->
      let m = p.Sweep.outcome.Experiment.metrics in
      let wire = Sio_httpd.Http.response_bytes ~body_bytes:p.Sweep.rate in
      let mbit = m.Metrics.reply_rate_avg *. float_of_int wire *. 8. /. 1e6 in
      Buffer.add_string buf
        (Printf.sprintf "%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.3f,%d,%d,%.2f\n" p.Sweep.rate
           m.Metrics.reply_rate_avg m.Metrics.reply_rate_sd m.Metrics.reply_rate_min
           m.Metrics.reply_rate_max m.Metrics.error_percent
           (Metrics.median_latency_ms m) m.Metrics.attempted m.Metrics.completed mbit))
    s.points;
  Buffer.contents buf

let csv_of_shard_series s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "shards,avg,sd,min,max,err_percent,p50_ms,p99_ms,attempted,completed\n";
  List.iter
    (fun p ->
      let m = p.Sweep.outcome.Experiment.metrics in
      let pct q =
        if Sio_sim.Histogram.count m.Metrics.latency = 0 then 0.
        else Sio_sim.Time.to_ms_f (Sio_sim.Histogram.percentile m.Metrics.latency q)
      in
      Buffer.add_string buf
        (Printf.sprintf "%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.3f,%.3f,%d,%d\n" p.Sweep.rate
           m.Metrics.reply_rate_avg m.Metrics.reply_rate_sd m.Metrics.reply_rate_min
           m.Metrics.reply_rate_max m.Metrics.error_percent (pct 50.) (pct 99.)
           m.Metrics.attempted m.Metrics.completed))
    s.points;
  Buffer.contents buf

let csv_of_idle_series s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "idle,avg,sd,min,max,err_percent,median_ms,attempted,completed,kernel_bytes\n";
  List.iter
    (fun p ->
      let o = p.Sweep.outcome in
      let m = o.Experiment.metrics in
      Buffer.add_string buf
        (Printf.sprintf "%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.3f,%d,%d,%d\n" p.Sweep.rate
           m.Metrics.reply_rate_avg m.Metrics.reply_rate_sd m.Metrics.reply_rate_min
           m.Metrics.reply_rate_max m.Metrics.error_percent
           (Metrics.median_latency_ms m) m.Metrics.attempted m.Metrics.completed
           o.Experiment.kernel_mem_peak))
    s.points;
  Buffer.contents buf
