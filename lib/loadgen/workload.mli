(** Benchmark workload description.

    Mirrors the paper's procedure: httperf offers connections at a
    fixed target rate, each fetching one 6 KB document over a fresh
    connection; a separate program keeps a constant number of inactive
    (never-completing, high-latency) connections open; runs are capped
    at 35 000 connections to stay clear of the 60 000-socket
    TIME_WAIT/port limit. *)

open Sio_sim
open Sio_net

type t = {
  request_rate : int;  (** target new connections per second *)
  total_connections : int;  (** paper: 35 000 per run *)
  inactive_connections : int;  (** paper: 1, 251, 501 *)
  document_path : string;
  doc_bytes : int;  (** must match the server's configured body size *)
  client_timeout : Time.t;  (** httperf's per-connection timeout *)
  client_fd_limit : int;
      (** the modified httperf copes with >1024 descriptors *)
  ephemeral_ports : int;  (** ~60 000 usable client ports *)
  time_wait : Time.t;  (** port quarantine after close (60 s) *)
  inactive_latency : Latency_profile.t;
      (** extra path latency of the idle clients *)
  active_latency : Latency_profile.t;
      (** extra path latency of the requesting clients (the paper's
          benchmark clients sit on the LAN; set Wan/Modem to model
          "32,000 high latency connections from across the Internet") *)
  inactive_reopen_delay : Time.t;
      (** how quickly a timed-out idle client reconnects *)
  inactive_open_window : Time.t;
      (** the idle pool's initial connects spread over this window
          (default 500 ms); stretch it for mega-idle populations so
          the SYN rate stays bounded *)
}

val default : t
(** The paper's parameters at rate 700 and load 1; override fields per
    experiment. *)

val scaled : t -> float -> t
(** [scaled w f] multiplies [total_connections] by [f] (minimum 100
    connections): the knob that trades run time for smoother curves. *)

val generation_duration : t -> Time.t
(** Time to offer all connections at the target rate. *)

val pp : Format.formatter -> t -> unit
