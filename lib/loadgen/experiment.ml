open Sio_sim
open Sio_kernel
open Sio_httpd

type server_kind =
  | Thttpd_select
  | Thttpd_poll
  | Thttpd_devpoll of { use_mmap : bool; max_events : int }
  | Thttpd_epoll of { max_events : int }
  | Phhttpd
  | Hybrid

let pp_server_kind ppf = function
  | Thttpd_select -> Fmt.string ppf "thttpd+select"
  | Thttpd_poll -> Fmt.string ppf "thttpd+poll"
  | Thttpd_devpoll { use_mmap; max_events } ->
      Fmt.pf ppf "thttpd+devpoll(mmap=%b,batch=%d)" use_mmap max_events
  | Thttpd_epoll { max_events } -> Fmt.pf ppf "thttpd+epoll(batch=%d)" max_events
  | Phhttpd -> Fmt.string ppf "phhttpd"
  | Hybrid -> Fmt.string ppf "hybrid"

type config = {
  kind : server_kind;
  workload : Workload.t;
  costs : Cost_model.t;
  seed : int;
  thttpd : Thttpd.config;
  phhttpd : Phhttpd.config;
  hybrid : Hybrid.config;
  server_fd_limit : int;
  settle : Time.t;
  drain : Time.t;
  hints : bool;
  wake_policy : Wait_queue.wake_policy;
  transmit : Conn.transmit;
  kernel_mem_limit : int option;
  net_bandwidth_bits_per_sec : int option;
}

let default_config ~kind ~workload =
  let conn = { Conn.default_config with doc_bytes = workload.Workload.doc_bytes } in
  {
    kind;
    workload;
    costs = Cost_model.default;
    seed = 42;
    thttpd = { Thttpd.default_config with conn };
    phhttpd = { Phhttpd.default_config with conn };
    hybrid = { Hybrid.default_config with conn };
    server_fd_limit = 4096;
    settle = Time.s 2;
    drain = Time.s 1;
    hints = true;
    wake_policy = Wait_queue.Wake_all;
    transmit = Conn.Copy;
    kernel_mem_limit = None;
    net_bandwidth_bits_per_sec = None;
  }

type outcome = {
  metrics : Metrics.t;
  server_stats : Server_stats.t;
  host_counters : Host.counters;
  cpu_utilization : float;
  inactive_established : int;
  inactive_reopens : int;
  final_mode : string;
  kernel_mem_peak : int;
  host_rss_bytes : int;
}

type running_server = {
  listener : Socket.t;
  stats : Server_stats.t;
  stop : unit -> unit;
  mode : unit -> string;
}

(* Serve the workload's document from the filesystem substrate: the
   same page-cache path a real static server takes. *)
let with_fs cfg host =
  let fs = Fs.create ~host () in
  Fs.add_file fs ~path:cfg.workload.Workload.document_path
    ~bytes:cfg.workload.Workload.doc_bytes;
  let conn_of base =
    { base with Sio_httpd.Conn.fs = Some fs; transmit = cfg.transmit }
  in
  {
    cfg with
    thttpd = { cfg.thttpd with Sio_httpd.Thttpd.conn = conn_of cfg.thttpd.Sio_httpd.Thttpd.conn };
    phhttpd =
      { cfg.phhttpd with Sio_httpd.Phhttpd.conn = conn_of cfg.phhttpd.Sio_httpd.Phhttpd.conn };
    hybrid = { cfg.hybrid with Sio_httpd.Hybrid.conn = conn_of cfg.hybrid.Sio_httpd.Hybrid.conn };
  }

let thttpd_on cfg proc backend label =
  match Thttpd.start ~proc ~backend ~config:cfg.thttpd () with
  | Ok t ->
      {
        listener = Thttpd.listener t;
        stats = Thttpd.stats t;
        stop = (fun () -> Thttpd.stop t);
        mode = (fun () -> label);
      }
  | Error `Emfile -> failwith ("Experiment: thttpd+" ^ label ^ " failed to start")

let start_server cfg proc =
  match cfg.kind with
  | Thttpd_select -> thttpd_on cfg proc (Backend.select proc) "select"
  | Thttpd_epoll { max_events } ->
      thttpd_on cfg proc (Backend.epoll ~max_events proc) "epoll"
  | Thttpd_poll -> (
      let backend = Backend.poll proc in
      match Thttpd.start ~proc ~backend ~config:cfg.thttpd () with
      | Ok t ->
          {
            listener = Thttpd.listener t;
            stats = Thttpd.stats t;
            stop = (fun () -> Thttpd.stop t);
            mode = (fun () -> "poll");
          }
      | Error `Emfile -> failwith "Experiment: thttpd+poll failed to start")
  | Thttpd_devpoll { use_mmap; max_events } -> (
      match Backend.devpoll ~use_mmap ~max_events proc with
      | Error `Emfile -> failwith "Experiment: /dev/poll open failed"
      | Ok backend -> (
          match Thttpd.start ~proc ~backend ~config:cfg.thttpd () with
          | Ok t ->
              {
                listener = Thttpd.listener t;
                stats = Thttpd.stats t;
                stop = (fun () -> Thttpd.stop t);
                mode = (fun () -> "devpoll");
              }
          | Error `Emfile -> failwith "Experiment: thttpd+devpoll failed to start"))
  | Phhttpd -> (
      match Phhttpd.start ~proc ~config:cfg.phhttpd () with
      | Ok t ->
          {
            listener = Phhttpd.listener t;
            stats = Phhttpd.stats t;
            stop = (fun () -> Phhttpd.stop t);
            mode =
              (fun () ->
                match Phhttpd.mode t with
                | Phhttpd.Signals -> "signals"
                | Phhttpd.Polling -> "polling");
          }
      | Error `Emfile -> failwith "Experiment: phhttpd failed to start")
  | Hybrid -> (
      match Hybrid.start ~proc ~config:cfg.hybrid () with
      | Ok t ->
          {
            listener = Hybrid.listener t;
            stats = Hybrid.stats t;
            stop = (fun () -> Hybrid.stop t);
            mode =
              (fun () ->
                match Hybrid.mode t with
                | Hybrid.Signals -> "signals"
                | Hybrid.Polling -> "polling");
          }
      | Error `Emfile -> failwith "Experiment: hybrid failed to start")

let run_gen ?arrivals ?measure ?mem_pool cfg =
  let engine = Engine.create ~seed:cfg.seed () in
  let host =
    Host.create ~engine ~costs:cfg.costs ~wake_policy:cfg.wake_policy
      ~hints_by_default:cfg.hints ?mem_limit:cfg.kernel_mem_limit ?mem_pool ()
  in
  let net =
    Sio_net.Network.create ~engine
      ?bandwidth_bits_per_sec:cfg.net_bandwidth_bits_per_sec ()
  in
  let proc = Process.create ~host ~fd_limit:cfg.server_fd_limit ~name:"server" () in
  let cfg = with_fs cfg host in
  let server = start_server cfg proc in
  let rng = Rng.split (Engine.rng engine) in
  let pool =
    Inactive.start ~engine ~net ~listener:server.listener ~workload:cfg.workload ~rng ()
  in
  (* Let the idle population establish before offering load. *)
  Engine.run ~until:cfg.settle engine;
  let client =
    Httperf.start ~engine ~net ~listener:server.listener ~workload:cfg.workload
      ?arrivals ~rng:(Rng.split (Engine.rng engine)) ()
  in
  let generation_duration =
    match measure with
    | Some d -> d
    | None -> Workload.generation_duration cfg.workload
  in
  let generation_end = Time.add (Engine.now engine) generation_duration in
  let horizon =
    Time.add generation_end (Time.add cfg.workload.Workload.client_timeout cfg.drain)
  in
  Engine.run ~until:horizon engine;
  let t_end = generation_end in
  let metrics = Httperf.metrics client ~t_end in
  let final_mode = server.mode () in
  server.stop ();
  Inactive.stop pool;
  ( {
      metrics;
      server_stats = server.stats;
      host_counters = host.Host.counters;
      cpu_utilization = Cpu.utilization host.Host.cpu ~now:(Engine.now engine);
      inactive_established = Inactive.established pool;
      inactive_reopens = Inactive.reopens pool;
      final_mode;
      kernel_mem_peak = host.Host.mem_peak;
      host_rss_bytes = Host_mem.rss_bytes ();
    },
    Httperf.reply_rates client ~until:t_end )

let run cfg = fst (run_gen cfg)

let run_routed ~arrivals ~measure ?mem_pool cfg =
  run_gen ~arrivals ~measure ?mem_pool cfg
