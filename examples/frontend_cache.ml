(* A static-content caching front end for a full-service web server —
   which is what phhttpd actually was ("a static-content caching front
   end for full-service web servers such as Apache", paper Section 2).

   Topology: clients -> [front end, event-loop cache] -> [backend,
   thttpd serving a slow dynamic document store]. The front end is
   written against the public Scalanio.Event_loop API; cache hits are
   served in microseconds, misses pay a full round trip to the slow
   backend. A Zipf-ish request mix shows the cache absorbing the bulk
   of the load.

     dune exec examples/frontend_cache.exe
*)

open Scalanio

(* Written once here, read-only afterwards. The interprocedural
   module-state rule proves no Domain_pool-reachable code writes this
   table, so it no longer needs a suppression. *)
let paths =
  Array.init 20 (fun i -> Printf.sprintf "/doc-%02d.html" i)

let () =
  let engine = Engine.create ~seed:99 () in

  (* ---- Backend: a slow full-service server on its own host ---- *)
  let backend_host = Host.create ~engine () in
  let backend_proc = Process.create ~host:backend_host ~name:"apache" () in
  let backend_fs = Fs.create ~host:backend_host () in
  Array.iter (fun p -> Fs.add_file backend_fs ~path:p ~bytes:6144) paths;
  let backend_conn_config =
    {
      Sio_httpd.Conn.default_config with
      Sio_httpd.Conn.fs = Some backend_fs;
      (* "Full service": each request burns 5 ms of backend CPU. *)
      respond_cost = Time.ms 5;
    }
  in
  let backend =
    let b =
      match Backend.devpoll backend_proc with
      | Ok b -> b
      | Error `Emfile -> failwith "backend devpoll failed"
    in
    match
      Thttpd.start ~proc:backend_proc ~backend:b
        ~config:{ Thttpd.default_config with Thttpd.conn = backend_conn_config }
        ()
    with
    | Ok t -> t
    | Error `Emfile -> failwith "backend start failed"
  in
  let backend_net = Network.create ~engine () in

  (* ---- Front end: an Event_loop cache on its own host ---- *)
  let fe_host = Host.create ~engine () in
  let fe_proc = Process.create ~host:fe_host ~name:"frontend" () in
  let fe_listen =
    match Kernel.listen fe_proc ~backlog:128 with
    | Ok fd -> fd
    | Error _ -> failwith "frontend listen failed"
  in
  let fe_listener =
    match Process.lookup_socket fe_proc fe_listen with Some s -> s | None -> assert false
  in
  let loop =
    match Event_loop.create ~proc:fe_proc ~backend:Event_loop.default_devpoll with
    | Ok l -> l
    | Error `Emfile -> failwith "frontend loop failed"
  in
  let cache : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let hits = ref 0 and misses = ref 0 in

  let respond fd body_bytes =
    ignore (Kernel.write fe_proc fd ~bytes_len:(Http.response_bytes ~body_bytes));
    Event_loop.unwatch loop fd;
    ignore (Kernel.close fe_proc fd)
  in
  let fetch_from_backend path k =
    let expected = Http.response_bytes ~body_bytes:6144 in
    let received = ref 0 in
    let request = Http.build_request ~path in
    let handlers =
      {
        Tcp.null_handlers with
        Tcp.on_established =
          (fun c -> Tcp.client_send c ~bytes_len:(String.length request) ~payload:request);
        on_bytes =
          (fun c n ->
            received := !received + n;
            if !received >= expected then begin
              Tcp.client_close c;
              k 6144
            end);
      }
    in
    ignore
      (Tcp.connect ~net:backend_net ~listener:(Thttpd.listener backend) ~handlers ())
  in
  let on_client fd mask =
    if Pollmask.intersects mask Pollmask.readable then
      match Kernel.read fe_proc fd with
      | Ok (Kernel.Data (text, _)) when Http.is_complete text -> (
          match Http.parse_request text with
          | Ok { Http.path; _ } -> (
              Kernel.compute fe_proc (Time.us 60) (* parse + cache probe *);
              match Hashtbl.find_opt cache path with
              | Some body ->
                  incr hits;
                  respond fd body
              | None ->
                  incr misses;
                  fetch_from_backend path (fun body ->
                      Hashtbl.replace cache path body;
                      respond fd body))
          | Error _ ->
              Event_loop.unwatch loop fd;
              ignore (Kernel.close fe_proc fd))
      | Ok (Kernel.Eof | Kernel.Econnreset) ->
          Event_loop.unwatch loop fd;
          ignore (Kernel.close fe_proc fd)
      | Ok _ | Error _ -> ()
  in
  Event_loop.watch loop ~fd:fe_listen ~events:Pollmask.pollin (fun _ ->
      let rec accept_all () =
        match Kernel.accept fe_proc fe_listen with
        | Ok (fd, _) ->
            Event_loop.watch loop ~fd ~events:Pollmask.pollin (on_client fd);
            accept_all ()
        | Error _ -> ()
      in
      accept_all ());
  Event_loop.run loop;

  (* ---- Clients: 2000 requests, Zipf-skewed across 20 documents ---- *)
  let client_net = Network.create ~engine () in
  let rng = Rng.split (Engine.rng engine) in
  let completed = ref 0 and latency = Histogram.create () in
  let zipf_pick () =
    (* crude Zipf: rank r with probability ~ 1/(r+1) *)
    let u = Rng.float rng 3.0 in
    let rank = int_of_float (Float.round (exp u)) - 1 in
    paths.(Stdlib.min (Array.length paths - 1) rank)
  in
  let request_one i =
    ignore
      (Engine.at engine (Time.ms (i * 2)) (fun () ->
           let path = zipf_pick () in
           let started = Engine.now engine in
           let expected = Http.response_bytes ~body_bytes:6144 in
           let received = ref 0 in
           let request = Http.build_request ~path in
           let handlers =
             {
               Tcp.null_handlers with
               Tcp.on_established =
                 (fun c ->
                   Tcp.client_send c ~bytes_len:(String.length request) ~payload:request);
               on_bytes =
                 (fun c n ->
                   received := !received + n;
                   if !received >= expected then begin
                     incr completed;
                     Histogram.add latency (Time.sub (Engine.now engine) started);
                     Tcp.client_close c
                   end);
             }
           in
           ignore (Tcp.connect ~net:client_net ~listener:fe_listener ~handlers ())))
  in
  for i = 0 to 1999 do
    request_one i
  done;
  Engine.run ~until:(Time.s 20) engine;
  Event_loop.stop loop;
  Thttpd.stop backend;

  Fmt.pr "frontend cache demo: %d/2000 requests served@." !completed;
  Fmt.pr "cache: %d hits, %d misses (%.1f%% hit rate, %d documents cached)@." !hits
    !misses
    (100. *. float_of_int !hits /. float_of_int (Stdlib.max 1 (!hits + !misses)))
    (Hashtbl.length cache);
  Fmt.pr "client latency: median %a, p99 %a@." Time.pp (Histogram.median latency)
    Time.pp (Histogram.percentile latency 99.);
  Fmt.pr "backend saw %d requests instead of 2000@."
    (Thttpd.stats backend).Sio_httpd.Server_stats.replies
