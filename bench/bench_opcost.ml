(* Simulated operation-cost tables: the quantities Section 3 of the
   paper argues about, measured on the calibrated cost model. Every
   number is deterministic. *)

open Sio_sim
open Sio_kernel

let env n =
  let engine = Engine.create () in
  let host = Host.create ~engine () in
  let sockets = Hashtbl.create n in
  for fd = 0 to n - 1 do
    Hashtbl.replace sockets fd (Socket.create_established ~host)
  done;
  (engine, host, sockets)

let busy_delta host f =
  let before = Cpu.total_busy host.Host.cpu in
  f ();
  Time.sub (Cpu.total_busy host.Host.cpu) before

(* Simulated CPU cost of one wait call over [n] idle descriptors. *)
let select_call_cost n =
  let n = Stdlib.min n (Fd_set.fd_setsize - 1) in
  let engine, host, sockets = env n in
  let read = Fd_set.create () in
  for fd = 0 to n - 1 do
    Fd_set.set read fd
  done;
  let none = Fd_set.create () in
  busy_delta host (fun () ->
      Select.select ~host ~lookup:(Hashtbl.find_opt sockets) ~read ~write:none
        ~except:none ~timeout:(Some Time.zero) ~k:(fun _ -> ());
      Engine.run engine)

let epoll_call_cost n =
  let engine, host, sockets = env n in
  let ep = Epoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
  for fd = 0 to n - 1 do
    ignore
      (Epoll.ctl_add ep ~fd ~events:Pollmask.pollin ()
      [@lint.ignore
        "one-shot measurement instance: the epoll set and every interest in it are \
         dropped wholesale after the call-cost probe"])
  done;
  busy_delta host (fun () ->
      Epoll.wait ep ~max_events:64 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
      Engine.run engine)

let poll_call_cost n =
  let engine, host, sockets = env n in
  let interests = List.init n (fun fd -> (fd, Pollmask.pollin)) in
  busy_delta host (fun () ->
      Poll.wait ~host ~lookup:(Hashtbl.find_opt sockets) ~interests
        ~timeout:(Some Time.zero) ~k:(fun _ -> ());
      Engine.run engine)

let devpoll_call_cost ~warm n =
  let engine, host, sockets = env n in
  let dev = Devpoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
  Devpoll.write dev (List.init n (fun fd -> (fd, Pollmask.pollin)));
  if warm then begin
    (* Populate the result caches so hints can do their job. *)
    Devpoll.dp_poll dev ~max_results:64 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
    Engine.run engine
  end;
  busy_delta host (fun () ->
      Devpoll.dp_poll dev ~max_results:64 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
      Engine.run engine)

(* Cost of keeping the kernel's interest set in sync for one
   connection turnover (add + remove) vs re-submitting the whole
   array, which is what every poll() call does. *)
let interest_maintenance_cost n =
  let engine, host, sockets = env n in
  let dev = Devpoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
  Devpoll.write dev (List.init n (fun fd -> (fd, Pollmask.pollin)));
  ignore engine;
  busy_delta host (fun () ->
      Devpoll.write dev [ (0, Pollmask.pollremove) ];
      Devpoll.write dev [ (0, Pollmask.pollin) ])

let rt_event_cost ~batch n_events =
  let engine, host, _ = env 0 in
  let q = Rt_signal.create_queue ~host ~limit:(n_events + 1) () in
  let sock = Socket.create_established ~host in
  Rt_signal.set_signal q ~socket:sock ~fd:1 ~signo:Rt_signal.sigrtmin;
  for _ = 1 to n_events do
    ignore (Socket.deliver sock ~bytes_len:1 ~payload:"");
    ignore (Socket.read_all sock)
  done;
  busy_delta host (fun () ->
      let remaining = ref n_events in
      let rec drain () =
        if !remaining > 0 then
          Rt_signal.sigtimedwait4 q ~max:batch ~timeout:(Some Time.zero) ~k:(fun ds ->
              remaining := !remaining - List.length ds;
              if List.length ds > 0 then drain ())
      in
      drain ();
      Engine.run engine)

let run ppf =
  Fmt.pf ppf "== Simulated syscall costs vs interest-set size ==@.";
  Fmt.pf ppf "(one wait call, nothing ready: the pure scan overhead)@.";
  Fmt.pf ppf "%8s  %10s  %10s  %13s  %13s  %9s@." "fds" "select us" "poll us"
    "devpoll cold" "devpoll warm" "epoll us";
  List.iter
    (fun n ->
      Fmt.pf ppf "%8d  %10.1f  %10.1f  %13.1f  %13.1f  %9.1f@." n
        (Time.to_us_f (select_call_cost n))
        (Time.to_us_f (poll_call_cost n))
        (Time.to_us_f (devpoll_call_cost ~warm:false n))
        (Time.to_us_f (devpoll_call_cost ~warm:true n))
        (Time.to_us_f (epoll_call_cost n)))
    [ 1; 10; 100; 250; 500; 1000; 2000 ];
  Fmt.pf ppf "@.== Interest maintenance: incremental /dev/poll writes ==@.";
  Fmt.pf ppf "(one connection turnover: POLLREMOVE + re-add, vs a full poll() copy-in)@.";
  List.iter
    (fun n ->
      let incremental = interest_maintenance_cost n in
      let full_copy = poll_call_cost n in
      Fmt.pf ppf "%8d fds: incremental %.1f us vs per-call copy %.1f us@." n
        (Time.to_us_f incremental) (Time.to_us_f full_copy))
    [ 100; 500; 1000 ];
  Fmt.pf ppf "@.== RT signal dequeue: sigwaitinfo vs sigtimedwait4 ==@.";
  Fmt.pf ppf "(draining 512 queued events; the paper's proposed batching syscall)@.";
  List.iter
    (fun batch ->
      let cost = rt_event_cost ~batch 512 in
      Fmt.pf ppf "  batch %3d: %8.1f us total, %6.2f us/event@." batch
        (Time.to_us_f cost)
        (Time.to_us_f cost /. 512.))
    [ 1; 4; 16; 64 ];
  Fmt.pf ppf "@."
