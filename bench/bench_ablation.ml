(* Ablation benches for the design choices DESIGN.md calls out: each
   runs the full benchmark at a fixed operating point and toggles one
   mechanism. All numbers are simulated and deterministic. *)

open Sio_sim
open Sio_kernel
open Sio_loadgen

let operating_point ~kind ~inactive ~rate ~scale =
  let workload =
    Workload.scaled
      {
        Workload.default with
        Workload.request_rate = rate;
        inactive_connections = inactive;
      }
      scale
  in
  Experiment.default_config ~kind ~workload

let devpoll = Experiment.Thttpd_devpoll { use_mmap = true; max_events = 64 }
let devpoll_nommap = Experiment.Thttpd_devpoll { use_mmap = false; max_events = 64 }

let pp_outcome ppf (label, (o : Experiment.outcome)) =
  let c = o.Experiment.host_counters in
  Fmt.pf ppf "  %-26s avg=%7.1f/s err=%5.2f%% cpu=%5.1f%% driver_polls=%8d hint_skips=%8d@."
    label o.Experiment.metrics.Metrics.reply_rate_avg
    o.Experiment.metrics.Metrics.error_percent
    (100. *. o.Experiment.cpu_utilization)
    c.Host.driver_polls c.Host.hint_skips

let hints ppf ~scale =
  Fmt.pf ppf "== Ablation: /dev/poll driver hints (devpoll, 501 idle, 900 req/s) ==@.";
  let base = operating_point ~kind:devpoll ~inactive:501 ~rate:900 ~scale in
  let with_hints = Experiment.run base in
  let without = Experiment.run { base with Experiment.hints = false } in
  pp_outcome ppf ("hints on", with_hints);
  pp_outcome ppf ("hints off", without);
  Fmt.pf ppf "@."

(* The result-copy saving is per ready descriptor, so it only shows at
   high readiness: measure one DP_POLL returning a full batch. *)
let mmap ppf ~scale =
  Fmt.pf ppf "== Ablation: shared result mapping (one DP_POLL, 256 ready fds) ==@.";
  let one_call ~use_mmap =
    let engine = Engine.create () in
    let host = Host.create ~engine () in
    let sockets = Hashtbl.create 256 in
    for fd = 0 to 255 do
      let s = Socket.create_established ~host in
      ignore (Socket.deliver s ~bytes_len:1 ~payload:"");
      Hashtbl.replace sockets fd s
    done;
    let dev = Devpoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
    Devpoll.write dev (List.init 256 (fun fd -> (fd, Pollmask.pollin)));
    if use_mmap then Devpoll.alloc_result_map dev ~slots:256;
    let before = Cpu.total_busy host.Host.cpu in
    Devpoll.dp_poll dev ~max_results:256 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
    Engine.run engine;
    Time.sub (Cpu.total_busy host.Host.cpu) before
  in
  Fmt.pf ppf "  mmap result area: %8.1f us/call@." (Time.to_us_f (one_call ~use_mmap:true));
  Fmt.pf ppf "  copy-out results: %8.1f us/call@." (Time.to_us_f (one_call ~use_mmap:false));
  (* And the end-to-end check: at the paper's operating point the
     difference is small, as the paper itself predicts ("we do not
     expect this modification to make as significant an impact"). *)
  let base = operating_point ~kind:devpoll ~inactive:501 ~rate:900 ~scale in
  let mapped = Experiment.run base in
  let copied = Experiment.run { base with Experiment.kind = devpoll_nommap } in
  pp_outcome ppf ("mmap (end to end)", mapped);
  pp_outcome ppf ("copy-out (end to end)", copied);
  Fmt.pf ppf "@."

let wakeup ppf ~scale =
  Fmt.pf ppf "== Ablation: wait-queue wake policy (poll, 251 idle, 700 req/s) ==@.";
  let base = operating_point ~kind:Experiment.Thttpd_poll ~inactive:251 ~rate:700 ~scale in
  let all = Experiment.run base in
  let one =
    Experiment.run { base with Experiment.wake_policy = Wait_queue.Wake_one }
  in
  pp_outcome ppf ("wake all", all);
  pp_outcome ppf ("wake one", one);
  Fmt.pf ppf
    "  (identical for a single-threaded server, as expected; the policy only@.";
  Fmt.pf ppf "   matters when several tasks sleep on one wait queue)@.@."

let phhttpd_mechanisms ppf ~scale =
  Fmt.pf ppf
    "== Ablation: phhttpd idle-load sensitivity (501 idle, 700 req/s) ==@.";
  Fmt.pf ppf "(which modelled mechanism makes inactive connections expensive?)@.";
  let base = operating_point ~kind:Experiment.Phhttpd ~inactive:501 ~rate:700 ~scale in
  let stock = Experiment.run base in
  let no_table =
    Experiment.run
      {
        base with
        Experiment.phhttpd =
          {
            base.Experiment.phhttpd with
            Sio_httpd.Phhttpd.conn_table_cost_per_conn = Time.zero;
          };
      }
  in
  let no_sweep =
    Experiment.run
      {
        base with
        Experiment.phhttpd =
          {
            base.Experiment.phhttpd with
            Sio_httpd.Phhttpd.sweep_cost_per_conn = Time.zero;
          };
      }
  in
  pp_outcome ppf ("stock phhttpd", stock);
  pp_outcome ppf ("no conn-table walk", no_table);
  pp_outcome ppf ("no timeout sweep", no_sweep);
  Fmt.pf ppf "@."

let hybrid_batch ppf ~scale =
  Fmt.pf ppf "== Ablation: sigtimedwait4 batching in the hybrid (1 idle, 1000 req/s) ==@.";
  let base = operating_point ~kind:Experiment.Hybrid ~inactive:1 ~rate:1000 ~scale in
  List.iter
    (fun batch ->
      let cfg =
        {
          base with
          Experiment.hybrid =
            { base.Experiment.hybrid with Sio_httpd.Hybrid.sigtimedwait4_batch = batch };
        }
      in
      let o = Experiment.run cfg in
      pp_outcome ppf (Printf.sprintf "batch %d" batch, o))
    [ 1; 8; 32 ];
  Fmt.pf ppf "@."

let sendfile ppf ~scale =
  Fmt.pf ppf "== Ablation: sendfile() vs write() (devpoll, 1 idle, 1100 req/s) ==@.";
  Fmt.pf ppf "(the paper's Section 6 suggests pairing sendfile with the new event models)@.";
  let base = operating_point ~kind:devpoll ~inactive:1 ~rate:1100 ~scale in
  let plain = Experiment.run base in
  let zero_copy = Experiment.run { base with Experiment.transmit = Sio_httpd.Conn.Sendfile } in
  pp_outcome ppf ("write()", plain);
  pp_outcome ppf ("sendfile()", zero_copy);
  Fmt.pf ppf "@."

(* How much of poll's survival comes from batch amortization? Sweep
   the per-iteration event bound (DESIGN.md section 5 explains why this
   structural parameter matters as much as any cost constant). *)
let batch_bound ppf ~scale =
  Fmt.pf ppf "== Ablation: per-iteration event bound (poll, 501 idle, 900 req/s) ==@.";
  let base =
    operating_point ~kind:Experiment.Thttpd_poll ~inactive:501 ~rate:900 ~scale
  in
  List.iter
    (fun m ->
      let cfg =
        {
          base with
          Experiment.thttpd =
            { base.Experiment.thttpd with Sio_httpd.Thttpd.max_events_per_iter = m };
        }
      in
      let o = Experiment.run cfg in
      pp_outcome ppf (Printf.sprintf "max %d events/iter" m, o))
    [ 2; 8; 32; 1024 ];
  Fmt.pf ppf "  (a large bound lets giant batches amortize the O(n) scan: latency@.";
  Fmt.pf ppf "   balloons but throughput recovers — real servers bound the batch)@.@."

(* Host-side cost of the incremental ready sets: the same 1000-idle
   DP_POLL scan with driver hints on (idle entries get certified into
   the analytic-batch fast path, so the host walk is O(active) = O(1)
   here) vs off (probes must consult the driver every time, the active
   set never drains, and the walk stays O(open set)). Unlike the rest
   of this file, the headline numbers are host wall time and therefore
   machine-dependent; the charged simulated cost is printed alongside
   for the deterministic view. Keep this section last so deterministic
   diffs of the ablation output can stop at its header. *)
let ready_set ppf =
  Fmt.pf ppf "== Ablation: incremental ready sets (DP_POLL, 1000 idle interests) ==@.";
  let n = 1000 and iters = 2000 in
  let one_leg ~hints =
    let engine = Engine.create () in
    let host = Host.create ~engine ~hints_by_default:hints () in
    let sockets = Hashtbl.create n in
    for fd = 0 to n - 1 do
      Hashtbl.replace sockets fd (Socket.create_established ~host)
    done;
    let dev = Devpoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
    Devpoll.write dev (List.init n (fun fd -> (fd, Pollmask.pollin)));
    (* Warm-up scan: with hints on it consults every driver once and
       certifies the whole set idle; steady state starts after it. *)
    Devpoll.dp_poll dev ~max_results:64 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
    Engine.run engine;
    let sim0 = Cpu.total_busy host.Host.cpu in
    let t0 = (Unix.gettimeofday () [@lint.ignore "host wall-clock is this ablation's measurand"]) in
    for _ = 1 to iters do
      Devpoll.dp_poll dev ~max_results:64 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
      Engine.run engine
    done;
    let t1 = (Unix.gettimeofday () [@lint.ignore "host wall-clock is this ablation's measurand"]) in
    let sim_us =
      Time.to_us_f (Time.sub (Cpu.total_busy host.Host.cpu) sim0) /. float_of_int iters
    in
    ((t1 -. t0) *. 1e9 /. float_of_int iters, sim_us)
  in
  let on_host, on_sim = one_leg ~hints:true in
  let off_host, off_sim = one_leg ~hints:false in
  Fmt.pf ppf "  %-34s %10.0f ns/scan host   %8.1f us/scan simulated@."
    "hints on (ready set drains)" on_host on_sim;
  Fmt.pf ppf "  %-34s %10.0f ns/scan host   %8.1f us/scan simulated@."
    "hints off (walk stays O(open))" off_host off_sim;
  Fmt.pf ppf "  host-side win: %.1fx@.@." (off_host /. Float.max 1. on_host)

let run ppf ~scale =
  hints ppf ~scale;
  batch_bound ppf ~scale;
  sendfile ppf ~scale;
  mmap ppf ~scale;
  wakeup ppf ~scale;
  phhttpd_mechanisms ppf ~scale;
  hybrid_batch ppf ~scale;
  ready_set ppf
