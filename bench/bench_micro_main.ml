(* Standalone microbenchmark runner: prints the bechamel table and
   writes the machine-readable BENCH_micro.json next to the cwd, so
   `make bench-micro` can refresh the committed numbers without the
   full `bench/main.exe` figure sweep. *)

let () =
  let json = ref "BENCH_micro.json" in
  let spec =
    [ ("--json", Arg.Set_string json, "FILE JSON output path (default BENCH_micro.json)") ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/bench_micro_main.exe";
  Bench_lib.Bench_micro.run ~json_out:!json Fmt.stdout
