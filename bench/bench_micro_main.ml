(* Standalone microbenchmark runner: prints the bechamel table and
   writes the machine-readable BENCH_micro.json next to the cwd, so
   `make bench-micro` can refresh the committed numbers without the
   full `bench/main.exe` figure sweep.

   `--check FILE` instead compares a fresh run against the committed
   numbers and exits non-zero if any benchmark regressed past a
   generous tolerance — the guard `make bench-check` leans on so
   host-side slowdowns on the scan paths fail CI instead of landing
   silently. The tolerance is wide (3x) because bechamel numbers move
   with machine load and hardware; it catches complexity-class
   regressions (an O(n) walk sneaking back into an O(active) path),
   not percent-level drift. *)

(* One row of write_json's output: four-space indent, %S-quoted name,
   a float or null, optional trailing comma. *)
let parse_row line =
  match
    Scanf.sscanf line " {%S: %S, %S: %s@}" (fun k1 name k2 v ->
        if k1 = "name" && k2 = "ns_per_op" then Some (name, v) else None)
  with
  | Some (name, v) ->
      let v = String.trim v in
      let v = if String.length v > 0 && v.[String.length v - 1] = ',' then
          String.sub v 0 (String.length v - 1)
        else v
      in
      Some (name, float_of_string_opt v)
  | None -> None
  | exception Scanf.Scan_failure _ | exception End_of_file | exception Failure _ -> None

let parse_results path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       match parse_row (input_line ic) with
       | Some row -> rows := row :: !rows
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let tolerance = 3.0

let check committed_path =
  if not (Sys.file_exists committed_path) then begin
    Fmt.epr "bench-check: %s not found@." committed_path;
    exit 2
  end;
  let fresh_path = Filename.temp_file "bench_micro" ".json" in
  Bench_lib.Bench_micro.run ~json_out:fresh_path Fmt.stdout;
  let committed = parse_results committed_path in
  let fresh = parse_results fresh_path in
  Sys.remove fresh_path;
  if committed = [] then begin
    Fmt.epr "bench-check: no results parsed from %s@." committed_path;
    exit 2
  end;
  let failures = ref 0 in
  let fail fmt = Fmt.kstr (fun msg -> incr failures; Fmt.epr "bench-check: %s@." msg) fmt in
  List.iter
    (fun (name, fresh_ns) ->
      match (List.assoc_opt name committed, fresh_ns) with
      | None, _ ->
          fail "%S is not in %s — run `make bench-micro` to refresh the committed numbers"
            name committed_path
      | Some (Some committed_ns), Some fresh_ns when fresh_ns > tolerance *. committed_ns ->
          fail "%-48s %10.1f ns/op exceeds %.0fx the committed %.1f" name fresh_ns
            tolerance committed_ns
      | Some _, _ -> ())
    fresh;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name fresh) then
        fail "%S is in %s but no longer measured — run `make bench-micro`" name
          committed_path)
    committed;
  if !failures > 0 then begin
    Fmt.epr "bench-check: %d failure(s) against %s (tolerance %.0fx)@." !failures
      committed_path tolerance;
    exit 1
  end;
  Fmt.pr "bench-check: %d benchmarks within %.0fx of %s@." (List.length fresh) tolerance
    committed_path

let () =
  let json = ref "BENCH_micro.json" in
  let check_against = ref "" in
  let spec =
    [
      ("--json", Arg.Set_string json, "FILE JSON output path (default BENCH_micro.json)");
      ( "--check",
        Arg.Set_string check_against,
        "FILE compare a fresh run against FILE instead of writing JSON" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/bench_micro_main.exe";
  if !check_against <> "" then check !check_against
  else Bench_lib.Bench_micro.run ~json_out:!json Fmt.stdout
