(* Standalone microbenchmark runner: prints the bechamel table and
   writes the machine-readable BENCH_micro.json next to the cwd, so
   `make bench-micro` can refresh the committed numbers without the
   full `bench/main.exe` figure sweep.

   `--check FILE` instead compares a fresh run against the committed
   numbers and exits non-zero if any benchmark regressed past a
   generous tolerance — the guard `make bench-check` leans on so
   host-side slowdowns on the scan paths fail CI instead of landing
   silently. The tolerance is wide (3x) because bechamel numbers move
   with machine load and hardware; it catches complexity-class
   regressions (an O(n) walk sneaking back into an O(active) path),
   not percent-level drift. *)

(* One row of write_json's output: four-space indent, %S-quoted name,
   ns/op and minor-words/op each a float or null, optional trailing
   comma. Kept in lockstep with Bench_micro.write_json. *)
let strip_trailing v =
  let v = String.trim v in
  if String.length v > 0 && v.[String.length v - 1] = ',' then
    String.sub v 0 (String.length v - 1)
  else v

let parse_row line =
  match
    Scanf.sscanf line " {%S: %S, %S: %s@, %S: %s@}"
      (fun k1 name k2 ns k3 words ->
        if k1 = "name" && k2 = "ns_per_op" && k3 = "minor_words_per_op" then
          Some (name, ns, words)
        else None)
  with
  | Some (name, ns, words) ->
      Some
        ( name,
          ( float_of_string_opt (strip_trailing ns),
            float_of_string_opt (strip_trailing words) ) )
  | None -> None
  | exception Scanf.Scan_failure _ | exception End_of_file | exception Failure _ -> None

let parse_results path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       match parse_row (input_line ic) with
       | Some row -> rows := row :: !rows
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let tolerance = 3.0

(* Allocation gate: minor words per op are near-deterministic (no
   machine-load noise), so the tolerance is tight. Applied only to the
   groups whose whole point is their allocation profile — the arena
   (connection state must stay a thin handle), the fd-map (ordered
   iteration must not re-grow snapshot allocations), and the
   data-plane (per-send ring accounting must stay heap-free). The
   small absolute slack absorbs GC sampling jitter on near-zero
   rows. *)
let alloc_tolerance = 1.5
let alloc_slack_words = 16.0

let alloc_gated name =
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  contains_sub name "arena/" || contains_sub name "fd-map/"
  || contains_sub name "data-plane/"

let check committed_path =
  if not (Sys.file_exists committed_path) then begin
    Fmt.epr "bench-check: %s not found@." committed_path;
    exit 2
  end;
  let fresh_path = Filename.temp_file "bench_micro" ".json" in
  Bench_lib.Bench_micro.run ~json_out:fresh_path Fmt.stdout;
  let committed = parse_results committed_path in
  let fresh = parse_results fresh_path in
  Sys.remove fresh_path;
  if committed = [] then begin
    Fmt.epr "bench-check: no results parsed from %s@." committed_path;
    exit 2
  end;
  let failures = ref 0 in
  let fail fmt = Fmt.kstr (fun msg -> incr failures; Fmt.epr "bench-check: %s@." msg) fmt in
  List.iter
    (fun (name, (fresh_ns, fresh_words)) ->
      match List.assoc_opt name committed with
      | None ->
          fail "%S is not in %s — run `make bench-micro` to refresh the committed numbers"
            name committed_path
      | Some (committed_ns, committed_words) ->
          (match (committed_ns, fresh_ns) with
          | Some c, Some f when f > tolerance *. c ->
              fail "%-48s %10.1f ns/op exceeds %.0fx the committed %.1f" name f
                tolerance c
          | _ -> ());
          if alloc_gated name then (
            match (committed_words, fresh_words) with
            | Some c, Some f
              when f > (alloc_tolerance *. c) +. alloc_slack_words ->
                fail
                  "%-48s %10.1f minor words/op exceeds %.1fx the committed %.1f"
                  name f alloc_tolerance c
            | _ -> ()))
    fresh;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name fresh) then
        fail "%S is in %s but no longer measured — run `make bench-micro`" name
          committed_path)
    committed;
  if !failures > 0 then begin
    Fmt.epr "bench-check: %d failure(s) against %s (tolerance %.0fx)@." !failures
      committed_path tolerance;
    exit 1
  end;
  Fmt.pr "bench-check: %d benchmarks within %.0fx of %s@." (List.length fresh) tolerance
    committed_path

let () =
  let json = ref "BENCH_micro.json" in
  let check_against = ref "" in
  let spec =
    [
      ("--json", Arg.Set_string json, "FILE JSON output path (default BENCH_micro.json)");
      ( "--check",
        Arg.Set_string check_against,
        "FILE compare a fresh run against FILE instead of writing JSON" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/bench_micro_main.exe";
  if !check_against <> "" then check !check_against
  else Bench_lib.Bench_micro.run ~json_out:!json Fmt.stdout
