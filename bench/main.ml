(* The full benchmark harness:

   1. bechamel microbenchmarks of the library's hot paths (wall time);
   2. simulated operation-cost tables (the paper's Section 3 claims);
   3. ablations of each design choice DESIGN.md calls out;
   4. regeneration of every figure of the paper's evaluation
      (Figures 4-14) plus the future-work extension experiments.

   Scale: figures default to a fraction of the paper's 35 000
   connections per point so the whole run finishes in minutes; pass
   e.g. `--scale 1.0 --step 50` for the paper's exact procedure. *)

let parse_args () =
  let scale = ref 0.06 in
  let step = ref 100 in
  let skip_micro = ref false in
  let jobs = ref 1 in
  let spec =
    [
      ("--scale", Arg.Set_float scale, "F fraction of 35000 connections per point (default 0.06)");
      ("--step", Arg.Set_int step, "N request-rate step for the sweeps (default 100)");
      ("--skip-micro", Arg.Set skip_micro, " skip the bechamel microbenchmarks");
      ( "--jobs",
        Arg.Set_int jobs,
        "N run sweep points on N domains (0 = auto, 1 = sequential; results identical)" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "bench/main.exe";
  if !jobs < 0 then begin
    prerr_endline "bench/main.exe: --jobs must be >= 0";
    exit 2
  end;
  (!scale, !step, !skip_micro, !jobs)

let () =
  let scale, step, skip_micro, jobs = parse_args () in
  let ppf = Fmt.stdout in
  Fmt.pf ppf "scalanio benchmark harness — Provos & Lever (2000) reproduction@.";
  Fmt.pf ppf "figure scale: %.2f x 35000 connections/point, rate step %d@.@." scale step;
  if not skip_micro then Bench_lib.Bench_micro.run ppf;
  Bench_opcost.run ppf;
  Bench_ablation.run ppf ~scale;
  Bench_docsize.run ppf ~scale;
  Bench_docsize.internet_mix ppf ~scale;
  let rates = Sio_loadgen.Sweep.rates ~from:500 ~until:1100 ~step in
  let run_figures pool =
    List.iter
      (fun fig ->
        let series = Scalanio.Figures.run ?pool ~scale ~rates fig in
        Scalanio.Figures.render ppf fig series;
        Fmt.pf ppf "@.")
      Scalanio.Figures.all
  in
  (match jobs with
  | 1 -> run_figures None
  | n ->
      let size = if n = 0 then None else Some n in
      Sio_sim.Domain_pool.with_pool ?size (fun pool -> run_figures (Some pool)));
  Fmt.pf ppf "done.@."
