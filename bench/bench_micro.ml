(* Wall-clock microbenchmarks (bechamel) of the library's hot data
   structures and scan paths: what it costs to *run the simulator*,
   as opposed to the simulated costs measured elsewhere. *)

open Bechamel
open Toolkit
open Sio_sim
open Sio_kernel

let heap_push_pop =
  Test.make ~name:"heap push+pop (1k live)"
    (let h = Heap.create ~leq:(fun (a : int) b -> a <= b) () in
     for i = 0 to 999 do
       Heap.push h i
     done;
     Staged.stage (fun () ->
         Heap.push h 500;
         ignore (Heap.pop h)))

let event_queue_cycle =
  Test.make ~name:"event schedule+fire"
    (let e = Engine.create () in
     Staged.stage (fun () ->
         ignore (Engine.after e 10 (fun () -> ()));
         ignore (Engine.step e)))

let interest_set_replace =
  Test.make ~name:"interest_table set (replace, 1k)"
    (let t = Interest_table.create () in
     for fd = 0 to 999 do
       ignore (Interest_table.set t ~fd ~events:Pollmask.pollin)
     done;
     Staged.stage (fun () -> ignore (Interest_table.set t ~fd:512 ~events:Pollmask.pollin)))
  [@@lint.ignore "throwaway probe table: the whole Interest_table is dropped after the \
                  measurement, so there is nothing to remove entry-by-entry"]

let interest_find =
  Test.make ~name:"interest_table find (1k)"
    (let t = Interest_table.create () in
     for fd = 0 to 999 do
       ignore (Interest_table.set t ~fd ~events:Pollmask.pollin)
     done;
     Staged.stage (fun () -> ignore (Interest_table.find t 777)))
  [@@lint.ignore "throwaway probe table: the whole Interest_table is dropped after the \
                  measurement, so there is nothing to remove entry-by-entry"]

let zero_env n =
  let engine = Engine.create () in
  let host = Host.create ~engine ~costs:Cost_model.zero () in
  let sockets = Hashtbl.create n in
  for fd = 0 to n - 1 do
    Hashtbl.replace sockets fd (Socket.create_established ~host)
  done;
  (engine, host, sockets)

let poll_scan n =
  Test.make ~name:(Printf.sprintf "poll() scan, %d idle fds" n)
    (let engine, host, sockets = zero_env n in
     let interests = List.init n (fun fd -> (fd, Pollmask.pollin)) in
     Staged.stage (fun () ->
         Poll.wait ~host ~lookup:(Hashtbl.find_opt sockets) ~interests
           ~timeout:(Some Time.zero) ~k:(fun _ -> ());
         Engine.run engine))

let devpoll_scan n =
  Test.make ~name:(Printf.sprintf "DP_POLL scan, %d idle interests" n)
    (let engine, host, sockets = zero_env n in
     let dev = Devpoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
     Devpoll.write dev (List.init n (fun fd -> (fd, Pollmask.pollin)));
     Staged.stage (fun () ->
         Devpoll.dp_poll dev ~max_results:64 ~timeout:(Some Time.zero) ~k:(fun _ -> ());
         Engine.run engine))

(* The incremental ready sets: persistent poll/select sets and the
   devpoll active set keep scans O(active) on the host. The all-idle
   cases measure the analytic-batch fast path; the active-of cases
   measure the mark-and-skip walk with a bounded ready population
   (delivered bytes are never read, so those sockets stay ready and
   are re-probed every scan). *)
let pset_scan n =
  Test.make ~name:(Printf.sprintf "poll pset scan, %d idle fds" n)
    (let engine, host, sockets = zero_env n in
     let set = Poll.Pset.create ~host ~lookup:(Hashtbl.find_opt sockets) () in
     for fd = 0 to n - 1 do
       Poll.Pset.set set fd Pollmask.pollin
     done;
     Staged.stage (fun () ->
         Poll.Pset.wait_set set ~timeout:(Some Time.zero) ~k:(fun _ -> ());
         Engine.run engine))

let sset_scan n =
  Test.make ~name:(Printf.sprintf "select sset scan, %d idle fds" n)
    (let engine, host, sockets = zero_env n in
     let set = Select.Sset.create ~host ~lookup:(Hashtbl.find_opt sockets) () in
     for fd = 0 to n - 1 do
       Select.Sset.add set fd Pollmask.pollin
     done;
     Staged.stage (fun () ->
         Select.Sset.wait_sset set ~timeout:(Some Time.zero) ~k:(fun _ -> ());
         Engine.run engine))

let devpoll_scan_active n k =
  Test.make ~name:(Printf.sprintf "DP_POLL scan, %d active of %d" k n)
    (let engine, host, sockets = zero_env n in
     let dev = Devpoll.create ~host ~lookup:(Hashtbl.find_opt sockets) in
     Devpoll.write dev (List.init n (fun fd -> (fd, Pollmask.pollin)));
     for fd = 0 to k - 1 do
       ignore (Socket.deliver (Hashtbl.find sockets fd) ~bytes_len:1 ~payload:"")
     done;
     Staged.stage (fun () ->
         Devpoll.dp_poll dev ~max_results:k ~timeout:(Some Time.zero) ~k:(fun _ -> ());
         Engine.run engine))

let ready_set_tests =
  Test.make_grouped ~name:"ready-set"
    [
      pset_scan 1000;
      sset_scan 1000;
      devpoll_scan_active 1000 8;
      devpoll_scan_active 1000 64;
    ]

let rt_enqueue_dequeue =
  Test.make ~name:"RT signal enqueue+sigwaitinfo"
    (let engine, host, _ = zero_env 1 in
     let q = Rt_signal.create_queue ~host () in
     let sock = Socket.create_established ~host in
     Rt_signal.set_signal q ~socket:sock ~fd:3 ~signo:Rt_signal.sigrtmin;
     Staged.stage (fun () ->
         ignore (Socket.deliver sock ~bytes_len:1 ~payload:"");
         ignore (Socket.read_all sock);
         Rt_signal.sigwaitinfo q ~k:(fun _ -> ());
         Engine.run engine))

let histogram_add =
  Test.make ~name:"histogram add"
    (let h = Histogram.create () in
     Staged.stage (fun () -> Histogram.add h 1_234_567))

(* The ordered-iteration race that motivated Fd_map: walking an
   fd-keyed table in ascending fd order, either intrinsically (Fd_map)
   or via the defensive snapshot the Hashtbl call sites used to take
   (fold into a list, sort, walk). *)
let fd_map_iterate n =
  Test.make ~name:(Printf.sprintf "fd_map ordered iterate (%d)" n)
    (let m = Fd_map.create ~initial_capacity:64 () in
     for fd = 0 to n - 1 do
       Fd_map.set m fd fd
     done;
     Staged.stage (fun () ->
         let sum = ref 0 in
         Fd_map.iter m (fun fd _ -> sum := !sum + fd);
         ignore (Sys.opaque_identity !sum)))

let hashtbl_snapshot_iterate n =
  Test.make ~name:(Printf.sprintf "hashtbl fold+sort iterate (%d)" n)
    (let h = Hashtbl.create 64 in
     for fd = 0 to n - 1 do
       Hashtbl.replace h fd fd
     done;
     Staged.stage (fun () ->
         let fds = List.sort compare (Hashtbl.fold (fun fd _ acc -> fd :: acc) h []) in
         let sum = ref 0 in
         List.iter (fun fd -> sum := !sum + fd) fds;
         ignore (Sys.opaque_identity !sum)))

let fd_map_tests =
  Test.make_grouped ~name:"fd-map"
    (List.concat_map
       (fun n -> [ fd_map_iterate n; hashtbl_snapshot_iterate n ])
       [ 10; 100; 1000 ])

(* The compact arena vs the record constellation it replaced: a
   pre-arena socket was ~a dozen heap blocks (two Sock_bufs, payload
   buffer, wait queue, accept queue, closure lists); an arena socket
   is one small immutable handle over the shared columns. The
   minor-words-per-op column is the interesting one here — it is what
   lets the idle-scaling figure hold 1M connections in host memory. *)
type baseline_conn = {
  mutable b_state : int;
  b_rcv : Sock_buf.t;
  b_snd : Sock_buf.t;
  b_payload : Stdlib.Buffer.t;
  b_waiters : Socket.waiter Wait_queue.t;
  b_accept_q : int Queue.t;
  mutable b_observers : (unit -> unit) list;
  mutable b_watchers : (unit -> unit) list;
}

let baseline_conn () =
  {
    b_state = 1;
    b_rcv = Sock_buf.create ~capacity:65536;
    b_snd = Sock_buf.create ~capacity:65536;
    b_payload = Stdlib.Buffer.create 64;
    b_waiters = Wait_queue.create ();
    b_accept_q = Queue.create ();
    b_observers = [];
    b_watchers = [];
  }

let arena_cycle =
  Test.make ~name:"conn create+close (arena)"
    (let engine = Engine.create () in
     let host = Host.create ~engine ~costs:Cost_model.zero () in
     Staged.stage (fun () ->
         let s = Socket.create_established ~host in
         Socket.close s))

let baseline_cycle =
  Test.make ~name:"conn create+drop (record baseline)"
    (Staged.stage (fun () -> ignore (Sys.opaque_identity (baseline_conn ()))))

let arena_idle_block n =
  Test.make ~name:(Printf.sprintf "idle conns x%d (arena)" n)
    (let engine = Engine.create () in
     let host = Host.create ~engine ~costs:Cost_model.zero () in
     Staged.stage (fun () ->
         let socks = Array.init n (fun _ -> Socket.create_established ~host) in
         Array.iter Socket.close socks))

let baseline_idle_block n =
  Test.make ~name:(Printf.sprintf "idle conns x%d (record baseline)" n)
    (Staged.stage (fun () ->
         ignore (Sys.opaque_identity (Array.init n (fun _ -> baseline_conn ())))))

let arena_churn =
  Test.make ~name:"conn churn, 10k live (arena)"
    (let engine = Engine.create () in
     let host = Host.create ~engine ~costs:Cost_model.zero () in
     let ring = Array.init 10_000 (fun _ -> Socket.create_established ~host) in
     let i = ref 0 in
     Staged.stage (fun () ->
         Socket.close ring.(!i);
         ring.(!i) <- Socket.create_established ~host;
         i := (!i + 1) mod Array.length ring))

let arena_tests =
  Test.make_grouped ~name:"arena"
    [
      arena_cycle;
      baseline_cycle;
      arena_idle_block 1000;
      baseline_idle_block 1000;
      arena_churn;
    ]

(* The zero-copy data plane's host-side footprint: reserve-and-drain a
   64 KB send through the plain buffer counter versus through the
   transmit ring's page accounting. Both paths are pure counter
   arithmetic over the arena columns (and, for the ring, the monotone
   mapped/drained positions), so both must stay allocation-free —
   the gated column. The ring variant buys its simulated-cost win
   with a little extra host arithmetic, which is fine; what may not
   regress is a heap block sneaking into the per-send path. *)
let send_copy_64k =
  Test.make ~name:"send 64KB (copy)"
    (let engine = Engine.create () in
     let host = Host.create ~engine ~costs:Cost_model.zero () in
     let s = Socket.create_established ~host in
     Staged.stage (fun () ->
         let n = Socket.write_reserve s 65536 in
         Socket.release_send_space s n))

let send_ring_64k =
  Test.make ~name:"send 64KB (ring)"
    (let engine = Engine.create () in
     let host = Host.create ~engine ~costs:Cost_model.zero () in
     let s = Socket.create_established ~host in
     assert (Socket.ring_attach s ~slot_bytes:4096);
     Staged.stage (fun () ->
         match Socket.ring_reserve s 65536 ~copy_bytes:0 with
         | Some (n, _pages) -> Socket.release_send_space s n
         | None -> assert false))

let data_plane_tests =
  Test.make_grouped ~name:"data-plane" [ send_copy_64k; send_ring_64k ]

(* The cluster control plane's host-side footprint: steering an
   arrival schedule across shards (the hash policy's stateless mix,
   the least-loaded balancer's heap walk) and folding per-shard server
   stats back into one record. All pure pre-/post-passes around the
   shard simulations — what must stay cheap is the per-connection
   decision and the per-point merge. *)
let steer_schedule = Array.init 1000 (fun i -> Sio_sim.Time.ms i)

let steer_hash =
  Test.make ~name:"steer 1k conns (hash)"
    (Staged.stage (fun () ->
         ignore
           (Sio_httpd.Shard_cluster.route ~policy:Sio_httpd.Shard_cluster.Hash_tuple
              ~shards:8 ~seed:42 steer_schedule)))

let steer_least_loaded =
  Test.make ~name:"steer 1k conns (least-loaded)"
    (Staged.stage (fun () ->
         ignore
           (Sio_httpd.Shard_cluster.route
              ~policy:Sio_httpd.Shard_cluster.Least_loaded ~shards:8 ~seed:42
              steer_schedule)))

let stats_merge =
  Test.make ~name:"stats merge (8 shards)"
    (let shard_stats =
       List.init 8 (fun s ->
           let st = Sio_httpd.Server_stats.create () in
           for i = 0 to 99 do
             Sio_httpd.Server_stats.record_reply st
               ~now:(Sio_sim.Time.ms ((s * 7) + (i * 10)))
           done;
           st)
     in
     Staged.stage (fun () -> ignore (Sio_httpd.Server_stats.merge shard_stats)))

let shard_tests =
  Test.make_grouped ~name:"shard" [ steer_hash; steer_least_loaded; stats_merge ]

let tests =
  Test.make_grouped ~name:"micro"
    [
      heap_push_pop;
      event_queue_cycle;
      interest_set_replace;
      interest_find;
      poll_scan 100;
      poll_scan 1000;
      devpoll_scan 100;
      devpoll_scan 1000;
      rt_enqueue_dequeue;
      histogram_add;
      fd_map_tests;
      ready_set_tests;
      arena_tests;
      data_plane_tests;
      shard_tests;
    ]

(* Machine-readable mirror of the printed table, for commit alongside
   the repo (BENCH_micro.json) and the README perf note. Each row
   carries host wall time and minor-heap allocation per operation; the
   latter is what `make bench-check` gates for the arena and fd-map
   groups (allocation is near-deterministic, so a regression there is
   a structural change, not noise). *)
let write_json path rows =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n  \"units\": [\"ns/op\", \"minor words/op\"],\n  \"results\": [\n";
  let num = function
    | Some v -> Printf.sprintf "%.1f" v
    | None -> "null"
  in
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, ns, words) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_op\": %s, \"minor_words_per_op\": %s}%s\n"
        name (num ns) (num words)
        (if i = last then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run ?json_out ppf =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let clock = Instance.monotonic_clock in
  let alloc = Instance.minor_allocated in
  let instances = [ clock; alloc ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.25) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let estimate r =
    match Analyze.OLS.estimates r with
    | Some (est :: _) -> Some est
    | Some [] | None -> None
  in
  (* Host-side report; rows of each measure table are sorted before
     anything observes their order. *)
  let measure_rows witness =
    match Hashtbl.find_opt merged (Measure.label witness) with
    | None -> []
    | Some tbl ->
        List.sort
          (fun (a, _) (b, _) -> compare (a : string) b)
          (Hashtbl.fold (fun name r acc -> (name, estimate r) :: acc) tbl [])
  in
  let ns_rows = measure_rows clock in
  let word_rows = measure_rows alloc in
  let rows =
    List.map
      (fun (name, ns) ->
        (name, ns, Option.join (List.assoc_opt name word_rows)))
      ns_rows
  in
  Fmt.pf ppf
    "== Microbenchmarks (host wall time / minor words per operation) ==@.";
  let cell = function
    | Some v -> Printf.sprintf "%10.1f" v
    | None -> Printf.sprintf "%10s" "n/a"
  in
  List.iter
    (fun (name, ns, words) ->
      Fmt.pf ppf "%-48s %s ns/op %s w/op@." name (cell ns) (cell words))
    rows;
  (match json_out with
  | Some path ->
      write_json path rows;
      Fmt.pf ppf "wrote %s@." path
  | None -> ());
  Fmt.pf ppf "@."
