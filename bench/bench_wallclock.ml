(* Sequential-vs-parallel wall-clock for a reference figure set.

   Runs the same 13-point sweeps (fig5 and fig11, the determinism
   suite's reference figures) once sequentially and once on a
   Domain_pool, checks the two produce byte-identical CSV, and writes
   the timings to BENCH_wallclock.json so the repo's perf trajectory
   is measurable PR over PR. Exits non-zero if the parallel results
   diverge — the Makefile's bench-smoke target leans on that. *)

let parse_args () =
  let scale = ref 0.1 in
  let jobs = ref 0 in
  let out = ref "BENCH_wallclock.json" in
  let figures = ref [] in
  let spec =
    [
      ("--scale", Arg.Set_float scale, "F fraction of 35000 connections per point (default 0.1)");
      ( "--jobs",
        Arg.Set_int jobs,
        "N pool size for the parallel pass (default 0 = min(cores-1, points))" );
      ("--out", Arg.Set_string out, "PATH where to write the JSON report");
    ]
  in
  Arg.parse spec
    (fun a -> figures := a :: !figures)
    "bench_wallclock [--scale F] [--jobs N] [--out PATH] [FIGURE...]";
  if !jobs < 0 then begin
    prerr_endline "bench_wallclock: --jobs must be >= 0";
    exit 2
  end;
  let figures = match List.rev !figures with [] -> [ "fig5"; "fig11" ] | fs -> fs in
  (!scale, !jobs, !out, figures)

let resolve id =
  match Scalanio.Figures.find id with
  | Some fig -> fig
  | None ->
      Fmt.epr "bench_wallclock: unknown figure %S@." id;
      exit 2

(* Every number a figure produces, as one string: any divergence
   between the two passes shows up as a fingerprint mismatch. The idle
   leg goes through the memory-aware CSV so the modeled kernel-bytes
   column is held to byte identity too (host RSS deliberately isn't —
   it never appears in CSV). *)
let fingerprint (fig_series, idle_series, rs_series, shard_series) =
  String.concat "\n"
    (List.map Sio_loadgen.Report.csv_of_series (List.concat fig_series)
    @ List.map Sio_loadgen.Report.csv_of_idle_series idle_series
    @ List.map Sio_loadgen.Report.csv_of_response_size_series rs_series
    @ List.map Sio_loadgen.Report.csv_of_shard_series shard_series)

(* Measuring host wall time is the entire point of this bench; it
   never feeds back into the simulation (only the CSV fingerprint,
   computed from simulated state, is compared for identity). *)
let timed f =
  let t0 = (Unix.gettimeofday () [@lint.ignore "host wall-clock is this bench's measurand"]) in
  let r = f () in
  (r, (Unix.gettimeofday () [@lint.ignore "host wall-clock is this bench's measurand"]) -. t0)

(* Tiny idle-scaling leg folded into both passes, so the incremental
   ready sets are part of the byte-identity fingerprint too. *)
let idle_smoke = [ 1; 51 ]

(* Likewise a tiny response-size leg: the streaming send machine, the
   transmit ring's page accounting, and the per-page cost charging all
   feed the fingerprint (16 KB exercises multi-page maps; 1 KB the
   partial-page and attach-fallback economics). *)
let response_size_smoke = [ 1024; 16384 ]

(* And a {1,2}-shard cluster leg: the steering pre-pass, the
   partitioned per-shard worlds, and the order-insensitive outcome
   merge all land in the fingerprint (the 2-shard points run their
   shards sequentially inside one pool task in the parallel pass, so
   scheduling independence is checked end to end). *)
let shard_smoke = [ 1; 2 ]

let () =
  let scale, jobs, out, figure_ids = parse_args () in
  let figures = List.map resolve figure_ids in
  let points =
    List.fold_left (fun n f -> n + List.length f.Scalanio.Figures.rates) 0 figures
    + List.length idle_smoke
    + (List.length response_size_smoke
      * List.length Scalanio.Figures.response_size.Scalanio.Figures.rs_series)
    + (List.length shard_smoke
      * List.length Scalanio.Figures.shard_scaling.Scalanio.Figures.ss_series)
  in
  let run pool =
    ( List.map (fun fig -> Scalanio.Figures.run ?pool ~scale fig) figures,
      Scalanio.Figures.run_idle_scaling ?pool ~idles:idle_smoke ~rate:300 (),
      Scalanio.Figures.run_response_size ?pool ~sizes:response_size_smoke ~scale (),
      Scalanio.Figures.run_shard_scaling ?pool ~shards:shard_smoke ~scale () )
  in
  Fmt.epr
    "bench_wallclock: %s+idle-scaling+response-size+shard-scaling, %d points/figure-set, scale %.2f@."
    (String.concat "+" figure_ids) points scale;
  let seq, seq_s = timed (fun () -> run None) in
  Fmt.epr "  sequential: %.2fs@." seq_s;
  let recommended = Domain.recommended_domain_count () in
  (* A single-core machine can't run a meaningful parallel leg: a
     1-domain pool measures queue overhead, not parallelism. Keep the
     byte-identity check by re-running the sequential leg instead. *)
  let skipped = jobs = 0 && recommended = 1 in
  let (par, par_s), n_jobs =
    if skipped then begin
      Fmt.epr "  parallel leg skipped (recommended_domains = 1); re-running sequentially@.";
      (timed (fun () -> run None), 1)
    end
    else begin
      (* Auto-sizing caps the pool at the point count: domains beyond
         the number of sweep points would only sit idle. *)
      let size =
        if jobs = 0 then Stdlib.max 1 (Stdlib.min (recommended - 1) points) else jobs
      in
      let pool = Sio_sim.Domain_pool.create ~size () in
      let n_jobs = Sio_sim.Domain_pool.size pool in
      let r =
        Fun.protect
          ~finally:(fun () -> Sio_sim.Domain_pool.shutdown pool)
          (fun () -> timed (fun () -> run (Some pool)))
      in
      Fmt.epr "  parallel (%d domains): %.2fs@." n_jobs (snd r);
      (r, n_jobs)
    end
  in
  let identical = String.equal (fingerprint seq) (fingerprint par) in
  let speedup = if par_s > 0. then seq_s /. par_s else 0. in
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  "benchmark": "wallclock",
  "figures": [%s],
  "points": %d,
  "scale": %.3f,
  "seq_jobs": 1,
  "parallel_jobs": %d,
  "recommended_domains": %d,
  "parallel_skipped": %b,
  "sequential_s": %.3f,
  "parallel_s": %.3f,
  "speedup": %.2f,
  "identical": %b
}
|}
    (String.concat ", " (List.map (Printf.sprintf "%S") figure_ids))
    points scale n_jobs recommended skipped seq_s par_s speedup identical;
  close_out oc;
  Fmt.epr "  speedup: %.2fx, identical: %b -> wrote %s@." speedup identical out;
  if not identical then begin
    Fmt.epr "bench_wallclock: FAIL — parallel results diverge from sequential@.";
    exit 1
  end
