# Convenience targets around dune; `make check` is the tier-1 verify.

# JOBS: pool size for parallel sweeps (0 = one less than the
# recommended domain count). SMOKE_SCALE: per-point workload fraction
# for bench-smoke.
JOBS ?= 0
SMOKE_SCALE ?= 0.02

.PHONY: build test lint lint-audit complexity-report complexity-check check bench bench-micro bench-check bench-smoke bench-wallclock figures-shard clean

build:
	dune build

test:
	dune runtest

# Determinism / domain-safety / cost-accounting / complexity static
# analysis (see DESIGN.md §7 "Statically-enforced invariants").
# Non-zero exit on any finding; suppress deliberate exceptions with
# [@lint.ignore "reason"] at the site. Runs parse + rule passes across
# cores-1 domains (--jobs 0); output is byte-identical to --jobs 1.
# `time` prints the lint wall time for the CI log.
lint: build
	@start=$$(date +%s%N); \
	dune exec bin/sio_lint.exe -- --jobs $(JOBS) lib bin bench examples; \
	status=$$?; end=$$(date +%s%N); \
	echo "lint wall time: $$(( (end - start) / 1000000 )) ms (jobs=$(JOBS))"; \
	exit $$status

# Suppression audit: list every [@lint.ignore] site and fail if any
# of them is stale (its removal would produce zero findings — the
# hazard it excused is gone, so the annotation must go too). One
# invocation: --audit-ignores runs the stale-ignore check itself.
lint-audit: build
	dune exec bin/sio_lint.exe -- --audit-ignores lib bin bench examples

# Refresh the committed whole-tree complexity certificate: per-symbol
# host (structural) and charged (simulated-CPU) cost summaries for
# every definition the interpreter can see. CI diffs a fresh run
# against this file, so any change to an inferred bound is visible in
# review even when it stays inside its annotation.
complexity-report: build
	dune exec bin/sio_lint.exe -- --complexity-report lib bin bench examples \
	  > test/lint_fixtures/complexity_report.txt

# Fail if the committed complexity certificate is stale relative to
# the tree (regenerate with `make complexity-report`).
complexity-check: build
	dune exec bin/sio_lint.exe -- --complexity-report lib bin bench examples \
	  > /tmp/complexity_report.txt
	diff -u test/lint_fixtures/complexity_report.txt /tmp/complexity_report.txt

# Tier-1 verify plus lint (including the suppression audit) and a tiny
# wall-clock smoke: build + full test suite + static analysis +
# sequential-vs-parallel byte-identity. Lint runs exactly twice: once
# for findings, once for the suppression audit.
check:
	dune build && dune runtest
	$(MAKE) lint
	$(MAKE) lint-audit
	$(MAKE) complexity-check
	$(MAKE) bench-check
	$(MAKE) bench-smoke

# The full benchmark harness (micro + opcost + ablations + figures).
bench: build
	dune exec bench/main.exe -- --jobs $(JOBS)

# Refresh the committed microbenchmark numbers (BENCH_micro.json at
# the repo root), without the full bench/main.exe figure sweep.
bench-micro: build
	dune exec bench/bench_micro_main.exe

# Guard against host-side perf regressions on the scan paths: run the
# microbenchmarks fresh and fail if any result exceeds 3x the
# committed BENCH_micro.json. The wide tolerance absorbs machine and
# load variance; what it catches is a complexity class coming back
# (e.g. an O(n) idle walk reappearing in an O(active) scan).
bench-check: build
	dune exec bench/bench_micro_main.exe -- --check BENCH_micro.json

# Sequential-vs-parallel wall-clock for the reference figure set;
# refreshes BENCH_wallclock.json at the repo root.
bench-wallclock: build
	dune exec bench/bench_wallclock.exe -- --jobs $(JOBS)

# Tiny-scale wall-clock bench: exits non-zero if the Domain_pool run
# diverges from the sequential run by even one byte of CSV.
bench-smoke: build
	dune exec bench/bench_wallclock.exe -- --scale $(SMOKE_SCALE) --jobs $(JOBS) \
	  --out /tmp/BENCH_wallclock_smoke.json

# Refresh the committed shard-scaling figure CSVs (figures/). CI
# regenerates the figure at the same scale and diffs against these, so
# run this after any change that moves the cluster numbers. The JSON
# sidecar carries host RSS and is deliberately not committed.
figures-shard: build
	dune exec bin/sio_figures.exe -- shard-scaling -q --csv figures
	rm -f figures/shard-scaling.json

clean:
	dune clean
