(* sio_lint — determinism & domain-safety static analyzer.

   Parses every .ml under the given roots (default: lib bin bench
   examples) and enforces the repository's invariants as named,
   individually-suppressable rules. Exit status: 0 clean, 1 findings,
   2 usage or I/O error. *)

open Sio_analysis

let usage =
  "usage: sio_lint [--rule ID]... [--list-rules] [--json] [path]...\n\
   Static analysis for scalanio: determinism, domain-safety and\n\
   cost-accounting invariants. With no paths, scans lib bin bench\n\
   examples under the current directory."

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

let () =
  let rule_ids = ref [] in
  let json = ref false in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--rule",
        Arg.String (fun s -> rule_ids := s :: !rule_ids),
        "ID run only this rule (repeatable; see --list-rules)" );
      ("--json", Arg.Set json, " emit findings as a JSON array for CI");
      ("--list-rules", Arg.Set list_rules, " print rule ids and descriptions, then exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun r -> Printf.printf "%-14s %s\n" r.Rule.id r.Rule.doc)
      Driver.all_rules;
    exit 0
  end;
  let rules =
    match List.rev !rule_ids with
    | [] -> Driver.all_rules
    | ids ->
        List.map
          (fun id ->
            match Driver.find_rule id with
            | Some r -> r
            | None ->
                Printf.eprintf "sio_lint: unknown rule %S (try --list-rules)\n" id;
                exit 2)
          ids
  in
  let roots =
    match List.rev !paths with
    | [] -> List.filter Sys.file_exists default_roots
    | ps ->
        List.iter
          (fun p ->
            if not (Sys.file_exists p) then begin
              Printf.eprintf "sio_lint: no such file or directory: %s\n" p;
              exit 2
            end)
          ps;
        ps
  in
  let findings = Driver.analyze_paths ~rules roots in
  if !json then
    print_endline
      ("[" ^ String.concat "," (List.map Finding.to_json findings) ^ "]")
  else List.iter (fun f -> print_endline (Finding.to_string f)) findings;
  if findings <> [] then begin
    Printf.eprintf "sio_lint: %d finding(s)\n" (List.length findings);
    exit 1
  end
