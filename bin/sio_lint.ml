(* sio_lint — determinism & domain-safety static analyzer.

   Parses every .ml under the given roots (default: lib bin bench
   examples), builds one whole-program context (symbol index + call
   graph + reachability fixpoints), and enforces the repository's
   invariants as named, individually-suppressable rules. Exit status:
   0 clean, 1 findings, 2 usage or I/O error. *)

open Sio_analysis

let usage =
  "usage: sio_lint [--rule ID]... [--list-rules] [--format text|json|sarif]\n\
  \       [--callgraph json|dot] [--audit-ignores] [--jobs N]\n\
  \       [--complexity-report] [path]...\n\
   Static analysis for scalanio: determinism, domain-safety and\n\
   cost-accounting invariants. With no paths, scans lib bin bench\n\
   examples under the current directory.\n\
  \  --callgraph     dump the resolved cross-module call graph and exit\n\
  \  --audit-ignores list every [@lint.ignore] suppression site, then run the\n\
  \                  stale-ignore check over the same parse (exit 1 if any\n\
  \                  suppression has outlived its hazard)\n\
  \  --jobs N        parallelize per-file parsing and rule passes over N domains\n\
  \                  (0 = cores-1, 1 = sequential; output is byte-identical)\n\
  \  --complexity-report\n\
  \                  print the whole-tree symbolic complexity report and exit 0"

let default_roots = [ "lib"; "bin"; "bench"; "examples" ]

type format = Text | Json | Sarif

let () =
  let rule_ids = ref [] in
  let format = ref Text in
  let list_rules = ref false in
  let callgraph = ref None in
  let audit_ignores = ref false in
  let jobs = ref 1 in
  let complexity_report = ref false in
  let paths = ref [] in
  let bad_usage fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "sio_lint: %s\n" msg;
        exit 2)
      fmt
  in
  let spec =
    [
      ( "--rule",
        Arg.String (fun s -> rule_ids := s :: !rule_ids),
        "ID run only this rule (repeatable; see --list-rules)" );
      ( "--format",
        Arg.String
          (function
          | "text" -> format := Text
          | "json" -> format := Json
          | "sarif" -> format := Sarif
          | f -> bad_usage "unknown format %S (expected text, json or sarif)" f),
        "FMT findings output: text (default), json, or sarif" );
      ("--json", Arg.Unit (fun () -> format := Json), " shorthand for --format json");
      ( "--callgraph",
        Arg.String
          (function
          | ("json" | "dot") as f -> callgraph := Some f
          | f -> bad_usage "unknown callgraph format %S (expected json or dot)" f),
        "FMT dump the call graph as json or dot, then exit" );
      ( "--audit-ignores",
        Arg.Set audit_ignores,
        " list every [@lint.ignore] site (file:line:col: reason) and fail if any is \
         stale" );
      ( "--jobs",
        Arg.Int
          (fun n ->
            if n < 0 then bad_usage "--jobs expects a non-negative count (got %d)" n
            else jobs := n),
        "N parallel per-file passes over N domains (0 = cores-1, default 1)" );
      ( "--complexity-report",
        Arg.Set complexity_report,
        " print the whole-tree symbolic complexity report, then exit" );
      ("--list-rules", Arg.Set list_rules, " print rule ids and descriptions, then exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    List.iter
      (fun r -> Printf.printf "%-14s %s\n" r.Rule.id r.Rule.doc)
      Driver.all_rules;
    exit 0
  end;
  let rules =
    match List.rev !rule_ids with
    | [] -> Driver.all_rules
    | ids ->
        List.map
          (fun id ->
            match Driver.find_rule id with
            | Some r -> r
            | None -> bad_usage "unknown rule %S (try --list-rules)" id)
          ids
  in
  let roots =
    match List.rev !paths with
    | [] -> List.filter Sys.file_exists default_roots
    | ps ->
        List.iter
          (fun p ->
            if not (Sys.file_exists p) then
              bad_usage "no such file or directory: %s" p)
          ps;
        ps
  in
  if !complexity_report then begin
    print_string (Driver.complexity_report ~jobs:!jobs roots);
    exit 0
  end;
  match !callgraph with
  | Some fmt ->
      let loaded = Driver.load ~jobs:!jobs roots in
      let graph = Callgraph.build (Symbol_index.build loaded.Driver.parsed) in
      print_endline
        (match fmt with "dot" -> Callgraph.to_dot graph | _ -> Callgraph.to_json graph)
  | None ->
      let loaded = Driver.load ~jobs:!jobs roots in
      if !audit_ignores then begin
        (* One parse serves both halves of the audit: the suppression
           listing and the stale-ignore check it implies. *)
        loaded.Driver.parsed
        |> List.concat_map (fun (file, str) ->
               List.map (fun (s : Ignores.site) -> (file, s)) (Ignores.collect str))
        |> List.sort compare
        |> List.iter (fun (file, (s : Ignores.site)) ->
               Printf.printf "%s:%d:%d: %s\n" file s.line s.col
                 (Option.value s.reason ~default:"(no reason)"));
        let stale =
          match Driver.find_rule "stale-ignore" with Some r -> [ r ] | None -> []
        in
        let findings = Driver.analyze_loaded ~rules:stale ~jobs:!jobs loaded in
        List.iter (fun f -> print_endline (Finding.to_string f)) findings;
        if findings <> [] then begin
          Printf.eprintf "sio_lint: %d stale suppression(s)\n" (List.length findings);
          exit 1
        end
      end
      else begin
        let findings = Driver.analyze_loaded ~rules ~jobs:!jobs loaded in
        (match !format with
        | Text -> List.iter (fun f -> print_endline (Finding.to_string f)) findings
        | Json ->
            print_endline
              ("[" ^ String.concat "," (List.map Finding.to_json findings) ^ "]")
        | Sarif -> print_string (Sarif.render ~rules:Driver.all_rules findings));
        if findings <> [] then begin
          Printf.eprintf "sio_lint: %d finding(s)\n" (List.length findings);
          exit 1
        end
      end
