(* Regenerate the paper's figures (and the extension experiments) from
   the simulation. `sio_figures list` shows what is available;
   `sio_figures all` reproduces the whole evaluation section. *)

open Cmdliner

let rates_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ from; until; step ] -> (
        match (int_of_string_opt from, int_of_string_opt until, int_of_string_opt step) with
        | Some f, Some u, Some st when st > 0 && u >= f ->
            Ok (Sio_loadgen.Sweep.rates ~from:f ~until:u ~step:st)
        | _, _, _ -> Error (`Msg "expected FROM:UNTIL:STEP with positive step"))
    | _ -> Error (`Msg "expected FROM:UNTIL:STEP")
  in
  let print ppf rates = Fmt.pf ppf "%a" Fmt.(list ~sep:comma int) rates in
  Arg.conv (parse, print)

let list_figures () =
  List.iter
    (fun f -> Fmt.pr "%-16s %s@." f.Scalanio.Figures.id f.Scalanio.Figures.title)
    Scalanio.Figures.all;
  let is = Scalanio.Figures.idle_scaling in
  Fmt.pr "%-16s %s (not in 'all'; request explicitly)@." is.Scalanio.Figures.is_id
    is.Scalanio.Figures.is_title;
  let rs = Scalanio.Figures.response_size in
  Fmt.pr "%-16s %s (not in 'all'; request explicitly)@." rs.Scalanio.Figures.rs_id
    rs.Scalanio.Figures.rs_title;
  let ss = Scalanio.Figures.shard_scaling in
  Fmt.pr "%-16s %s (not in 'all'; request explicitly)@." ss.Scalanio.Figures.ss_id
    ss.Scalanio.Figures.ss_title

let sanitize label =
  String.map (fun c -> if c = ' ' || c = '/' || c = '=' then '-' else c) label

let write_csv dir fig series =
  List.iter
    (fun s ->
      let path =
        Filename.concat dir
          (Printf.sprintf "%s-%s.csv" fig.Scalanio.Figures.id
             (sanitize s.Sio_loadgen.Report.label))
      in
      let oc = open_out path in
      output_string oc (Sio_loadgen.Report.csv_of_series s);
      close_out oc;
      Fmt.epr "wrote %s@." path)
    series

let write_idle_csv dir series =
  List.iter
    (fun s ->
      let path =
        Filename.concat dir
          (Printf.sprintf "idle-scaling-%s.csv" (sanitize s.Sio_loadgen.Report.label))
      in
      let oc = open_out path in
      output_string oc (Sio_loadgen.Report.csv_of_idle_series s);
      close_out oc;
      Fmt.epr "wrote %s@." path)
    series

(* The memory report: modeled kernel bytes (deterministic) next to the
   measuring host's RSS (not deterministic, hence JSON only — the CSVs
   and fingerprints stay reproducible). *)
let write_idle_json dir seed series =
  let path = Filename.concat dir "idle-scaling.json" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"figure\": \"idle-scaling\",\n  \"rate\": %d,\n  \"seed\": %d,\n  \"series\": [\n"
       Scalanio.Figures.idle_scaling.Scalanio.Figures.is_rate seed);
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "    {\n      \"label\": %S,\n      \"points\": [\n"
           s.Sio_loadgen.Report.label);
      let n = List.length s.Sio_loadgen.Report.points in
      List.iteri
        (fun pi p ->
          let o = p.Sio_loadgen.Sweep.outcome in
          let m = o.Sio_loadgen.Experiment.metrics in
          Buffer.add_string buf
            (Printf.sprintf
               "        {\"idle\": %d, \"reply_rate_avg\": %.2f, \"err_percent\": %.2f, \"median_ms\": %.3f, \"kernel_mem_peak_bytes\": %d, \"host_rss_bytes\": %d}%s\n"
               p.Sio_loadgen.Sweep.rate m.Sio_loadgen.Metrics.reply_rate_avg
               m.Sio_loadgen.Metrics.error_percent
               (Sio_loadgen.Metrics.median_latency_ms m)
               o.Sio_loadgen.Experiment.kernel_mem_peak
               o.Sio_loadgen.Experiment.host_rss_bytes
               (if pi = n - 1 then "" else ",")))
        s.Sio_loadgen.Report.points;
      Buffer.add_string buf
        (Printf.sprintf "      ]\n    }%s\n"
           (if si = List.length series - 1 then "" else ",")))
    series;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.epr "wrote %s@." path

let write_response_size_csv dir series =
  List.iter
    (fun s ->
      let path =
        Filename.concat dir
          (Printf.sprintf "response-size-%s.csv" (sanitize s.Sio_loadgen.Report.label))
      in
      let oc = open_out path in
      output_string oc (Sio_loadgen.Report.csv_of_response_size_series s);
      close_out oc;
      Fmt.epr "wrote %s@." path)
    series

let write_response_size_json dir seed scale series =
  let path = Filename.concat dir "response-size.json" in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"figure\": \"response-size\",\n  \"seed\": %d,\n  \"scale\": %g,\n  \"series\": [\n"
       seed scale);
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "    {\n      \"label\": %S,\n      \"points\": [\n"
           s.Sio_loadgen.Report.label);
      let n = List.length s.Sio_loadgen.Report.points in
      List.iteri
        (fun pi p ->
          let o = p.Sio_loadgen.Sweep.outcome in
          let m = o.Sio_loadgen.Experiment.metrics in
          let body = p.Sio_loadgen.Sweep.rate in
          let wire = Sio_httpd.Http.response_bytes ~body_bytes:body in
          let mbit =
            m.Sio_loadgen.Metrics.reply_rate_avg *. float_of_int wire *. 8. /. 1e6
          in
          let st = o.Sio_loadgen.Experiment.server_stats in
          Buffer.add_string buf
            (Printf.sprintf
               "        {\"body_bytes\": %d, \"offered_rate\": %d, \"reply_rate_avg\": %.2f, \"mbit_s\": %.2f, \"err_percent\": %.2f, \"median_ms\": %.3f, \"partial_writes\": %d, \"bytes_sent\": %d, \"kernel_mem_peak_bytes\": %d}%s\n"
               body
               (Scalanio.Figures.response_size_rate body)
               m.Sio_loadgen.Metrics.reply_rate_avg mbit
               m.Sio_loadgen.Metrics.error_percent
               (Sio_loadgen.Metrics.median_latency_ms m)
               st.Sio_httpd.Server_stats.partial_writes
               st.Sio_httpd.Server_stats.bytes_sent
               o.Sio_loadgen.Experiment.kernel_mem_peak
               (if pi = n - 1 then "" else ",")))
        s.Sio_loadgen.Report.points;
      Buffer.add_string buf
        (Printf.sprintf "      ]\n    }%s\n"
           (if si = List.length series - 1 then "" else ",")))
    series;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.epr "wrote %s@." path

let run_response_size pool scale seed quiet csv_dir =
  let on_point ~label p =
    if not quiet then
      Fmt.epr "  [response-size] %s body=%d avg=%.1f err=%.1f%%@." label
        p.Sio_loadgen.Sweep.rate
        p.Sio_loadgen.Sweep.outcome.Sio_loadgen.Experiment.metrics
          .Sio_loadgen.Metrics.reply_rate_avg
        p.Sio_loadgen.Sweep.outcome.Sio_loadgen.Experiment.metrics
          .Sio_loadgen.Metrics.error_percent
  in
  let series = Scalanio.Figures.run_response_size ?pool ~scale ~seed ~on_point () in
  Scalanio.Figures.render_response_size Fmt.stdout series;
  (match csv_dir with Some dir -> write_response_size_csv dir series | None -> ());
  write_response_size_json
    (Option.value csv_dir ~default:Filename.current_dir_name)
    seed scale series;
  Fmt.pr "@."

let write_shard_csv dir ~main ~ablation =
  let write prefix s =
    let path =
      Filename.concat dir
        (Printf.sprintf "%s-%s.csv" prefix (sanitize s.Sio_loadgen.Report.label))
    in
    let oc = open_out path in
    output_string oc (Sio_loadgen.Report.csv_of_shard_series s);
    close_out oc;
    Fmt.epr "wrote %s@." path
  in
  List.iter (write "shard-scaling") main;
  List.iter (write "shard-ablation") ablation

let write_shard_json dir seed scale ~main ~ablation =
  let path = Filename.concat dir "shard-scaling.json" in
  let buf = Buffer.create 1024 in
  let f = Scalanio.Figures.shard_scaling in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"figure\": \"shard-scaling\",\n  \"offered_rate\": %d,\n  \"idle\": %d,\n  \"seed\": %d,\n  \"scale\": %g,\n"
       f.Scalanio.Figures.ss_rate f.Scalanio.Figures.ss_idle seed scale);
  let block name series last =
    Buffer.add_string buf (Printf.sprintf "  %S: [\n" name);
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "    {\n      \"label\": %S,\n      \"points\": [\n"
             s.Sio_loadgen.Report.label);
        let n = List.length s.Sio_loadgen.Report.points in
        List.iteri
          (fun pi p ->
            let o = p.Sio_loadgen.Sweep.outcome in
            let m = o.Sio_loadgen.Experiment.metrics in
            let pct q =
              if Sio_sim.Histogram.count m.Sio_loadgen.Metrics.latency = 0 then 0.
              else
                Sio_sim.Time.to_ms_f
                  (Sio_sim.Histogram.percentile m.Sio_loadgen.Metrics.latency q)
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "        {\"shards\": %d, \"reply_rate_avg\": %.2f, \"err_percent\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"kernel_mem_peak_bytes\": %d, \"host_rss_bytes\": %d}%s\n"
                 p.Sio_loadgen.Sweep.rate m.Sio_loadgen.Metrics.reply_rate_avg
                 m.Sio_loadgen.Metrics.error_percent (pct 50.) (pct 99.)
                 o.Sio_loadgen.Experiment.kernel_mem_peak
                 o.Sio_loadgen.Experiment.host_rss_bytes
                 (if pi = n - 1 then "" else ",")))
          s.Sio_loadgen.Report.points;
        Buffer.add_string buf
          (Printf.sprintf "      ]\n    }%s\n"
             (if si = List.length series - 1 then "" else ",")))
      series;
    Buffer.add_string buf (Printf.sprintf "  ]%s\n" (if last then "" else ","))
  in
  block "series" main false;
  block "ablation" ablation true;
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Fmt.epr "wrote %s@." path

let run_shard_scaling pool scale seed quiet csv_dir =
  let on_point ~label p =
    if not quiet then
      Fmt.epr "  [shard-scaling] %s shards=%d avg=%.1f err=%.1f%%@." label
        p.Sio_loadgen.Sweep.rate
        p.Sio_loadgen.Sweep.outcome.Sio_loadgen.Experiment.metrics
          .Sio_loadgen.Metrics.reply_rate_avg
        p.Sio_loadgen.Sweep.outcome.Sio_loadgen.Experiment.metrics
          .Sio_loadgen.Metrics.error_percent
  in
  let main = Scalanio.Figures.run_shard_scaling ?pool ~scale ~seed ~on_point () in
  let ablation = Scalanio.Figures.run_shard_ablation ?pool ~scale ~seed ~on_point () in
  Scalanio.Figures.render_shard_scaling Fmt.stdout ~main ~ablation;
  (match csv_dir with Some dir -> write_shard_csv dir ~main ~ablation | None -> ());
  write_shard_json
    (Option.value csv_dir ~default:Filename.current_dir_name)
    seed scale ~main ~ablation;
  Fmt.pr "@."

let run_idle_scaling pool seed quiet csv_dir =
  let on_point ~label p =
    if not quiet then
      Fmt.epr "  [idle-scaling] %s idle=%d avg=%.1f err=%.1f%%@." label
        p.Sio_loadgen.Sweep.rate
        p.Sio_loadgen.Sweep.outcome.Sio_loadgen.Experiment.metrics
          .Sio_loadgen.Metrics.reply_rate_avg
        p.Sio_loadgen.Sweep.outcome.Sio_loadgen.Experiment.metrics
          .Sio_loadgen.Metrics.error_percent
  in
  let series = Scalanio.Figures.run_idle_scaling ?pool ~seed ~on_point () in
  Scalanio.Figures.render_idle_scaling Fmt.stdout series;
  (match csv_dir with Some dir -> write_idle_csv dir series | None -> ());
  write_idle_json (Option.value csv_dir ~default:Filename.current_dir_name) seed series;
  Fmt.pr "@."

let with_jobs jobs f =
  match jobs with
  | 1 -> f None
  | n ->
      let size = if n = 0 then None else Some n in
      Sio_sim.Domain_pool.with_pool ?size (fun pool -> f (Some pool))

let run_figures names scale seed rates quiet csv_dir jobs =
  if jobs < 0 then begin
    Fmt.epr "sio_figures: --jobs must be >= 0 (got %d)@." jobs;
    exit 1
  end;
  (* idle-scaling and response-size have their own shapes (x axis =
     idle count / body size, per-point rates) and are heavier than a
     classic figure, so they are excluded from 'all' and handled
     separately when named. *)
  let names, want_idle_scaling =
    let want = List.mem "idle-scaling" names in
    (List.filter (fun n -> n <> "idle-scaling") names, want)
  in
  let names, want_response_size =
    let want = List.mem "response-size" names in
    (List.filter (fun n -> n <> "response-size") names, want)
  in
  let names, want_shard_scaling =
    let want = List.mem "shard-scaling" names in
    (List.filter (fun n -> n <> "shard-scaling") names, want)
  in
  let targets =
    match names with
    | [] when want_idle_scaling || want_response_size || want_shard_scaling -> Ok []
    | [] | [ "all" ] -> Ok Scalanio.Figures.all
    | names ->
        let rec resolve acc = function
          | [] -> Ok (List.rev acc)
          | n :: rest -> (
              match Scalanio.Figures.find n with
              | Some f -> resolve (f :: acc) rest
              | None -> Error n)
        in
        resolve [] names
  in
  match targets with
  | Error n ->
      Fmt.epr "unknown figure %S; try `sio_figures list`@." n;
      1
  | Ok figures ->
      with_jobs jobs (fun pool ->
          List.iter
            (fun fig ->
              let on_point ~label p =
                if not quiet then
                  Fmt.epr "  [%s] %s rate=%d avg=%.1f err=%.1f%%@." fig.Scalanio.Figures.id
                    label p.Sio_loadgen.Sweep.rate
                    p.Sio_loadgen.Sweep.outcome.Sio_loadgen.Experiment.metrics
                      .Sio_loadgen.Metrics.reply_rate_avg
                    p.Sio_loadgen.Sweep.outcome.Sio_loadgen.Experiment.metrics
                      .Sio_loadgen.Metrics.error_percent
              in
              let series = Scalanio.Figures.run ?pool ~scale ?rates ~seed ~on_point fig in
              Scalanio.Figures.render Fmt.stdout fig series;
              (match csv_dir with Some dir -> write_csv dir fig series | None -> ());
              Fmt.pr "@.")
            figures;
          if want_idle_scaling then run_idle_scaling pool seed quiet csv_dir;
          if want_response_size then run_response_size pool scale seed quiet csv_dir;
          if want_shard_scaling then run_shard_scaling pool scale seed quiet csv_dir);
      0

let names_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FIGURE"
        ~doc:"Figure ids (fig4..fig14, hybrid, ...), 'all', or 'list'.")

let scale_arg =
  Arg.(
    value & opt float 0.2
    & info [ "scale" ] ~docv:"F"
        ~doc:"Fraction of the paper's 35000 connections per point (1.0 = full scale).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let rates_arg =
  Arg.(
    value & opt (some rates_conv) None
    & info [ "rates" ] ~docv:"FROM:UNTIL:STEP" ~doc:"Override the swept request rates.")

let quiet_arg = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-point progress.")

let csv_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each series as a CSV file into $(docv).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run the points of each sweep on $(docv) domains in parallel \
           (results are bit-identical to the sequential run). 0 means \
           one less than the machine's recommended domain count; 1 \
           (the default) stays sequential.")

let main names scale seed rates quiet csv_dir jobs =
  match names with
  | [ "list" ] ->
      list_figures ();
      0
  | _ -> run_figures names scale seed rates quiet csv_dir jobs

let cmd =
  let doc = "regenerate the figures of Provos & Lever (2000)" in
  Cmd.v
    (Cmd.info "sio_figures" ~doc)
    Term.(
      const main $ names_arg $ scale_arg $ seed_arg $ rates_arg $ quiet_arg $ csv_arg
      $ jobs_arg)

let () = exit (Cmd.eval' cmd)
